"""Vectorized (NumPy) envelope kernel.

The pure-Python merge in :mod:`repro.envelope.merge` walks elementary
intervals one at a time.  This module expresses the same computation as
array programs:

* :class:`FlatEnvelope` — a structure-of-arrays envelope
  (``ya/za/yb/zb`` float64 + ``source`` int64), losslessly
  round-trippable to/from :class:`repro.envelope.chain.Envelope`;
* :func:`merge_envelopes_flat` — the pairwise merge: union breakpoints
  by a segmented two-way merge of the already-sorted per-side endpoint
  streams (:func:`merge_sorted_streams`; the composite argsort of PR 1
  remains as the :data:`USE_STREAM_MERGE` ablation), covering-piece
  location by segmented running maxima over piece-start markers,
  vectorized linear interpolation per unique bound, dominance
  resolution with sign arrays, and crossing/output emission with
  boolean masks — no per-interval Python loop (a run-length-boundary
  emission variant exists behind :data:`USE_RUN_EMISSION`);
* :func:`batch_merge` — the same sweep over *many independent merges
  at once* (a "stacked" set of envelope pairs keyed by a group-id
  array).  The divide-and-conquer construction and the PCT Phase-1
  layers are exactly such batches: all merges of one tree level are
  independent, so one NumPy pass replaces hundreds of tiny Python
  merges;
* :func:`build_envelope_flat` — level-batched divide-and-conquer
  construction (Lemma 3.1) on top of :func:`batch_merge`, returning
  per-node elementary-interval counts so callers can replay the exact
  PRAM charges of the reference engine.

Parity contract: for every input, the flat kernel produces the *same*
pieces, sources, crossings and ``ops`` as the pure-Python engine — the
float arithmetic mirrors ``Piece.z_at`` / ``lerp`` operation for
operation (including the exact-endpoint shortcuts), the breakpoint set
is the same sorted-unique set, and coalescing applies the same
source/contiguity rules.  ``tests/test_envelope_flat.py`` enforces
this on adversarial inputs.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.envelope.merge import Crossing
from repro.errors import EnvelopeError
from repro.geometry.primitives import EPS, NEG_INF
from repro.geometry.segments import ImageSegment

__all__ = [
    "FlatEnvelope",
    "FlatMergeResult",
    "merge_envelopes_flat",
    "merge_sorted_streams",
    "batch_merge",
    "stack_envelopes",
    "build_envelope_flat",
    "FlatBuildResult",
]

_F = np.float64
_I = np.int64
_U = np.uint64


def _tuples_to_matrix(rows: Sequence) -> np.ndarray:
    """(n, 5) float64 matrix from a sequence of 5-field flat tuples
    (``Piece`` / ``ImageSegment``), via a single chained ``fromiter``
    pass — several times faster than ``np.asarray`` on tuple rows."""
    return np.fromiter(
        itertools.chain.from_iterable(rows), _F, count=5 * len(rows)
    ).reshape(-1, 5)


#: Sign bit of an IEEE-754 double, as the uint64 bit pattern.
_SIGN_BIT = np.uint64(0x8000000000000000)

#: Ablation switch for the segmented stream merge in :func:`_sweep`
#: (the bench toggles it to measure the argsort-vs-merge delta; both
#: paths produce identical results).
USE_STREAM_MERGE = True

#: Event count below which :func:`_sweep` prefers the composite
#: argsort even when :data:`USE_STREAM_MERGE` is on: the merge path
#: runs more (cheaper) array ops, so per-call overhead dominates on
#: small levels while the argsort's O(E log E) comparison cost is
#: still negligible there.
STREAM_MERGE_MIN_EVENTS = 4096

#: Ablation switch for the run-length output emission in
#: :func:`_sweep`: find the EnvelopeBuilder join boundaries on the
#: interval sequence and gather output values once, directly at run
#: boundaries, instead of scattering every piece and compressing.
#: Both paths produce identical results.  Measured on the recorded
#: machine the run emission is ~5-10% *slower* than the two-pass
#: emission (the ``build-emission-ablation`` bench row tracks it):
#: the scatter+compress pipeline touches each interval about as often
#: and fancy-index stores beat the extra per-interval selects the run
#: path needs for the crossing slots — so the default stays off and
#: the honest negative result is kept measurable.
USE_RUN_EMISSION = False

#: Ablation switch for the per-level event-buffer arena in
#: :func:`_sweep` (ROADMAP item 5): a divide-and-conquer build calls
#: the sweep once per level and each call used to ``np.empty`` four
#: event-sized buffers; the arena reuses one grown-on-demand
#: allocation across levels instead.  Both paths produce identical
#: results — every borrowed buffer is fully consumed (copied out by
#: fancy indexing) before the sweep returns.  Measured on the
#: recorded machine the arena is ~2% *slower* at m=8192 (the
#: ``build-sweep-scratch-ablation`` bench row tracks it): glibc
#: already recycles the level-sized blocks malloc-side, and the
#: arena's extra ``fill(-1)`` pass plus slice bookkeeping costs more
#: than the avoided ``np.empty`` — so, like :data:`USE_RUN_EMISSION`,
#: the default stays off and the negative result stays measurable.
USE_SWEEP_SCRATCH = False

#: Ablation switch for the prefix-sum group-offset derivation on the
#: stream-merge path of :func:`_sweep` (the last named candidate of
#: ROADMAP item 5): with the kept-event mask already in hand, the
#: per-group unique-bound offsets are a ``cumsum`` gather at the group
#: boundaries instead of a ``searchsorted`` over the kept positions,
#: and the elementary-interval index/ops arrays follow from offset
#: arithmetic instead of a per-bound group comparison + ``bincount``.
#: Both settings produce identical results.  Measured on the recorded
#: machine: 0.99× on a careful interleaved A/B at m=8192, with
#: single-recording spread up to 1.08 (the
#: ``build-group-offset-ablation`` bench row tracks it) — the replaced
#: ``searchsorted``/``bincount`` are O(n_live log n_bounds) in a phase
#: dominated by the O(n_ev) scatter stores, while the ``cumsum`` runs
#: over every event, so the fourth consecutive build-side ablation
#: lands noise-level-to-negative.  Default stays off; the row keeps
#: the honest result measurable.
USE_GROUP_OFFSET_PREFIX = False


class _SweepScratch:
    """Grown-on-demand event buffers shared across :func:`_sweep`
    calls (one float64, two int64, one bool row — exactly the per-call
    transient set of both the leaf and the stream-merge path).  The
    ``busy`` flag makes re-entrant borrowing fall back to fresh
    allocations rather than alias a live buffer."""

    __slots__ = ("f", "ia", "ib", "b", "busy")

    def __init__(self) -> None:
        self.f = np.empty(0, _F)
        self.ia = np.empty(0, _I)
        self.ib = np.empty(0, _I)
        self.b = np.empty(0, bool)
        self.busy = False

    def take(self, n: int):
        """Borrow ``(float, int, int, bool)`` rows of length ``n``
        plus a flag saying whether :meth:`release` must be called."""
        if not USE_SWEEP_SCRATCH or self.busy:
            return (
                np.empty(n, _F),
                np.empty(n, _I),
                np.empty(n, _I),
                np.empty(n, bool),
                False,
            )
        if len(self.f) < n:
            cap = max(n, 2 * len(self.f))
            self.f = np.empty(cap, _F)
            self.ia = np.empty(cap, _I)
            self.ib = np.empty(cap, _I)
            self.b = np.empty(cap, bool)
        self.busy = True
        return (self.f[:n], self.ia[:n], self.ib[:n], self.b[:n], True)

    def release(self, borrowed: bool) -> None:
        if borrowed:
            self.busy = False


_SWEEP_SCRATCH = _SweepScratch()


class FlatEnvelope:
    """Structure-of-arrays envelope: parallel ``ya/za/yb/zb/source``.

    Same invariants as :class:`Envelope` (pieces sorted by ``ya``,
    ``ya < yb``, no overlap); the arrays make batched evaluation and
    merging cheap.  Instances are immutable by convention.
    """

    __slots__ = ("ya", "za", "yb", "zb", "source")

    def __init__(
        self,
        ya: np.ndarray,
        za: np.ndarray,
        yb: np.ndarray,
        zb: np.ndarray,
        source: np.ndarray,
    ):
        self.ya = ya
        self.za = za
        self.yb = yb
        self.zb = zb
        self.source = source

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "FlatEnvelope":
        z = np.empty(0, _F)
        return FlatEnvelope(z, z, z, z, np.empty(0, _I))

    @staticmethod
    def from_envelope(env: Envelope) -> "FlatEnvelope":
        return FlatEnvelope.from_pieces(env.pieces)

    @staticmethod
    def from_pieces(pieces: Sequence[Piece]) -> "FlatEnvelope":
        """Flatten a ``(ya, za, yb, zb, source)`` tuple sequence.

        ``fromiter`` over the chained fields is several times faster
        than ``np.asarray`` on the tuple sequence (it skips the
        per-row sequence protocol).

        >>> from repro.envelope.chain import Piece
        >>> flat = FlatEnvelope.from_pieces([
        ...     Piece(0.0, 1.0, 2.0, 3.0, 7),
        ...     Piece(2.0, 0.5, 4.0, 0.5, 8),
        ... ])
        >>> flat.size
        2
        >>> flat.ya.tolist()
        [0.0, 2.0]
        >>> flat.to_envelope().pieces[1].source  # lossless round trip
        8
        """
        if not len(pieces):
            return FlatEnvelope.empty()
        mat = _tuples_to_matrix(pieces)
        return FlatEnvelope(
            np.ascontiguousarray(mat[:, 0]),
            np.ascontiguousarray(mat[:, 1]),
            np.ascontiguousarray(mat[:, 2]),
            np.ascontiguousarray(mat[:, 3]),
            mat[:, 4].astype(_I),
        )

    @staticmethod
    def from_segment(seg: ImageSegment) -> "FlatEnvelope":
        if seg.is_vertical:
            return FlatEnvelope.empty()
        return FlatEnvelope(
            np.array([seg.y1], _F),
            np.array([seg.z1], _F),
            np.array([seg.y2], _F),
            np.array([seg.z2], _F),
            np.array([seg.source], _I),
        )

    # -- conversion ---------------------------------------------------

    def to_envelope(self) -> Envelope:
        return Envelope(
            list(
                map(
                    Piece._make,
                    zip(
                        self.ya.tolist(),
                        self.za.tolist(),
                        self.yb.tolist(),
                        self.zb.tolist(),
                        self.source.tolist(),
                    ),
                )
            )
        )

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ya)

    @property
    def size(self) -> int:
        return len(self.ya)

    def __bool__(self) -> bool:
        return len(self.ya) > 0

    def pieces_overlapping(self, ya: float, yb: float) -> tuple[int, int]:
        """Half-open index range ``[lo, hi)`` of pieces whose interior
        overlaps ``(ya, yb)`` — exact replica of
        :meth:`Envelope.pieces_overlapping` (same bisection on the same
        floats)."""
        n = len(self.ya)
        if n == 0 or ya >= yb:
            return (0, 0)
        # ndarray.searchsorted avoids the np.searchsorted dispatch
        # wrapper — this runs once per insert on the hot path.
        lo = int(self.ya.searchsorted(ya, side="right")) - 1
        if lo < 0 or self.yb[lo] <= ya:
            lo += 1
        hi = int(self.ya.searchsorted(yb, side="left"))
        return (lo, hi)

    def window(self, lo: int, hi: int) -> "FlatEnvelope":
        """Zero-copy view of pieces ``[lo, hi)`` (shares the buffers)."""
        return FlatEnvelope(
            self.ya[lo:hi],
            self.za[lo:hi],
            self.yb[lo:hi],
            self.zb[lo:hi],
            self.source[lo:hi],
        )

    def splice(self, lo: int, hi: int, ya, za, yb, zb, source) -> "FlatEnvelope":
        """New envelope with pieces ``[lo, hi)`` replaced by the given
        piece fields (arrays or plain lists) — the flat analogue of the
        tuple splice in :func:`repro.envelope.splice.insert_segment`,
        one C-level concatenate per field.  Returns ``type(self)`` so
        profile subclasses stay closed under splicing."""
        cls = type(self)
        return cls(
            np.concatenate([self.ya[:lo], ya, self.ya[hi:]]),
            np.concatenate([self.za[:lo], za, self.za[hi:]]),
            np.concatenate([self.yb[:lo], yb, self.yb[hi:]]),
            np.concatenate([self.zb[:lo], zb, self.zb[hi:]]),
            np.concatenate(
                [self.source[:lo], np.asarray(source, _I), self.source[hi:]]
            ),
        )

    def z_at_many(self, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`Envelope.value_at`: profile height at each
        ``y`` (``-inf`` in gaps, max of one-sided limits at shared
        breakpoints)."""
        ys = np.asarray(ys, _F)
        n = len(self.ya)
        if n == 0:
            return np.full(ys.shape, NEG_INF, _F)
        i = np.searchsorted(self.ya, ys, side="right") - 1
        ic = np.clip(i, 0, n - 1)
        inside = (i >= 0) & (self.ya[ic] <= ys) & (ys <= self.yb[ic])
        best = np.where(
            inside,
            _z_eval(self.ya[ic], self.za[ic], self.yb[ic], self.zb[ic], ys),
            NEG_INF,
        )
        # Previous piece ending exactly at y (jump breakpoints).
        prev_ok = (i >= 1) & (self.yb[np.clip(i - 1, 0, n - 1)] == ys)
        prev_val = np.where(
            prev_ok, self.zb[np.clip(i - 1, 0, n - 1)], NEG_INF
        )
        best = np.maximum(best, prev_val)
        # Next piece starting exactly at y.
        nxt = np.clip(i + 1, 0, n - 1)
        nxt_ok = (i + 1 < n) & (self.ya[nxt] == ys)
        best = np.maximum(best, np.where(nxt_ok, self.za[nxt], NEG_INF))
        return best

    def validate(self) -> None:
        """Raise :class:`EnvelopeError` when invariants are violated."""
        if np.any(self.ya >= self.yb):
            raise EnvelopeError("flat envelope has an empty-span piece")
        if len(self.ya) > 1 and np.any(self.ya[1:] < self.yb[:-1]):
            raise EnvelopeError("flat envelope pieces overlap")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not len(self.ya):
            return "FlatEnvelope(empty)"
        return (
            f"FlatEnvelope({len(self.ya)} pieces over"
            f" [{self.ya[0]:.4g}, {self.yb[-1]:.4g}])"
        )


class FlatMergeResult(NamedTuple):
    """Flat-kernel analogue of :class:`repro.envelope.merge.MergeResult`."""

    envelope: FlatEnvelope
    crossings: list[Crossing]
    ops: int


def _z_eval(
    ya: np.ndarray,
    za: np.ndarray,
    yb: np.ndarray,
    zb: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Vectorized ``Piece.z_at``: value-identical float arithmetic,
    including the exact-at-endpoint semantics of ``z_at`` and ``lerp``.

    Only the ``t == 1.0`` guard is materialised: ``y == ya`` forces
    ``t == 0.0`` exactly, and ``za + (zb - za) * 0.0`` equals ``za``
    (up to the sign of zero, which compares equal everywhere), while
    ``y == yb`` forces ``t == 1.0`` (IEEE ``x / x == 1``), which the
    guard maps to ``zb`` exactly as the scalar shortcuts do.  Callers
    only evaluate real pieces (``ya < yb``), so the division never
    sees a zero denominator.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        # Lanes for non-covering candidate pieces hold garbage (they
        # are masked out by the callers) and may overflow to inf/nan.
        t = (y - ya) / (yb - ya)
        z = za + (zb - za) * t
        return np.where(t == 1.0, zb, z)


class _Stacked(NamedTuple):
    """Many envelopes stacked into one array set.

    ``offsets`` has length ``n_groups + 1``; group ``g`` owns pieces
    ``offsets[g]:offsets[g+1]`` (sorted by ``ya`` within the group).
    """

    ya: np.ndarray
    za: np.ndarray
    yb: np.ndarray
    zb: np.ndarray
    source: np.ndarray
    offsets: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.offsets) - 1

    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def group_ids(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.n_groups, dtype=_I), self.counts()
        )

    def group(self, g: int) -> FlatEnvelope:
        lo, hi = int(self.offsets[g]), int(self.offsets[g + 1])
        return FlatEnvelope(
            self.ya[lo:hi],
            self.za[lo:hi],
            self.yb[lo:hi],
            self.zb[lo:hi],
            self.source[lo:hi],
        )


def stack_envelopes(envs: Sequence[FlatEnvelope]) -> _Stacked:
    counts = np.array([len(e) for e in envs], _I)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    if not envs:
        e = FlatEnvelope.empty()
        return _Stacked(e.ya, e.za, e.yb, e.zb, e.source, offsets)
    return _Stacked(
        np.concatenate([e.ya for e in envs]),
        np.concatenate([e.za for e in envs]),
        np.concatenate([e.yb for e in envs]),
        np.concatenate([e.zb for e in envs]),
        np.concatenate([e.source for e in envs]),
        offsets,
    )


class _BatchOut(NamedTuple):
    """Result of a batched multi-group merge."""

    merged: _Stacked
    #: elementary-interval count per group (the PRAM ``ops`` charge).
    ops: np.ndarray
    #: crossing arrays, in (group, y) order.
    cross_group: np.ndarray
    cross_y: np.ndarray
    cross_z: np.ndarray
    cross_front: np.ndarray
    cross_back: np.ndarray

    def crossings_of(self, g: int) -> list[Crossing]:
        lo = int(np.searchsorted(self.cross_group, g, side="left"))
        hi = int(np.searchsorted(self.cross_group, g, side="right"))
        return [
            Crossing(y, z, f, b)
            for y, z, f, b in zip(
                self.cross_y[lo:hi].tolist(),
                self.cross_z[lo:hi].tolist(),
                self.cross_front[lo:hi].tolist(),
                self.cross_back[lo:hi].tolist(),
            )
        ]


def batch_merge(
    a: _Stacked,
    b: _Stacked,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
) -> _BatchOut:
    """Merge ``a.group(g)`` with ``b.group(g)`` for every ``g`` at once.

    Mirrors :func:`repro.envelope.merge.merge_envelopes` exactly,
    including the empty-input fast path (an empty side returns the
    other side verbatim — uncoalesced — with ``ops`` equal to its piece
    count and no crossings).
    """
    if a.n_groups != b.n_groups:
        raise EnvelopeError(
            f"batch_merge group mismatch: {a.n_groups} != {b.n_groups}"
        )
    G = a.n_groups
    ca, cb = a.counts(), b.counts()
    live = (ca > 0) & (cb > 0)  # groups that go through the sweep
    all_live = bool(live.all())

    ops_live, out = _sweep(a, b, live, eps, record_crossings)
    if all_live:
        ops = ops_live
    else:
        ops = np.zeros(G, _I)
        # Empty-side fast path: ops = len(other.pieces); both sides
        # empty -> 0 — exactly mirrors the scalar early returns.
        ops[ca == 0] = cb[ca == 0]
        ops[cb == 0] += ca[cb == 0] * (ca[cb == 0] > 0)
        ops[live] = ops_live

    if all_live:
        out_ya, out_za, out_yb, out_zb, out_src, _ = out[:6]
        merged = _Stacked(
            out_ya, out_za, out_yb, out_zb, out_src, out[6]
        )
        cg, cy, cz, cf, cbk = out[7:12]
        return _BatchOut(merged, ops, cg, cy, cz, cf, cbk)

    # Stitch live output and passthrough groups back into group order.
    parts_ya: list[np.ndarray] = []
    parts_za: list[np.ndarray] = []
    parts_yb: list[np.ndarray] = []
    parts_zb: list[np.ndarray] = []
    parts_src: list[np.ndarray] = []
    parts_grp: list[np.ndarray] = []

    def take(st: _Stacked, g: int) -> None:
        lo, hi = int(st.offsets[g]), int(st.offsets[g + 1])
        parts_ya.append(st.ya[lo:hi])
        parts_za.append(st.za[lo:hi])
        parts_yb.append(st.yb[lo:hi])
        parts_zb.append(st.zb[lo:hi])
        parts_src.append(st.source[lo:hi])
        parts_grp.append(np.full(hi - lo, g, _I))

    live_pos = 0
    (l_ya, l_za, l_yb, l_zb, l_src, l_grp) = out[:6]
    live_offsets = out[6]
    live_ids = np.flatnonzero(live)
    for g in range(G):
        if live[g]:
            lo = int(live_offsets[live_pos])
            hi = int(live_offsets[live_pos + 1])
            parts_ya.append(l_ya[lo:hi])
            parts_za.append(l_za[lo:hi])
            parts_yb.append(l_yb[lo:hi])
            parts_zb.append(l_zb[lo:hi])
            parts_src.append(l_src[lo:hi])
            parts_grp.append(np.full(hi - lo, g, _I))
            live_pos += 1
        elif ca[g] > 0:
            take(a, g)
        elif cb[g] > 0:
            take(b, g)
    out_ya = np.concatenate(parts_ya) if parts_ya else np.empty(0, _F)
    out_za = np.concatenate(parts_za) if parts_za else np.empty(0, _F)
    out_yb = np.concatenate(parts_yb) if parts_yb else np.empty(0, _F)
    out_zb = np.concatenate(parts_zb) if parts_zb else np.empty(0, _F)
    out_src = (
        np.concatenate(parts_src) if parts_src else np.empty(0, _I)
    )
    out_grp = (
        np.concatenate(parts_grp) if parts_grp else np.empty(0, _I)
    )
    assert live_pos == len(live_ids)

    offsets = np.zeros(G + 1, _I)
    np.cumsum(np.bincount(out_grp, minlength=G), out=offsets[1:])
    merged = _Stacked(out_ya, out_za, out_yb, out_zb, out_src, offsets)

    cg, cy, cz, cf, cbk = out[7:12]
    return _BatchOut(merged, ops, cg, cy, cz, cf, cbk)


def _endpoint_stream(
    ya: np.ndarray,
    yb: np.ndarray,
    grp: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interleaved, within-side-deduplicated endpoint events of one
    stacked side: ``(values, groups, start_markers)``.

    The stream ``[ya0, yb0, ya1, yb1, ...]`` is sorted within each
    group; the only duplicates are a piece end coinciding with the
    next piece's start, and runs have length at most two (``ya < yb``
    per piece).  Dropping the start keeps the sort small; its piece
    marker folds into the kept end event so downstream point location
    still sees the start.
    """
    ev = np.empty(2 * n, _F)
    ev[0::2] = ya
    ev[1::2] = yb
    gv = np.empty(2 * n, _I)
    gv[0::2] = grp
    gv[1::2] = grp
    mk = np.full(2 * n, -1, _I)
    mk[0::2] = np.arange(n, dtype=_I)
    keep = np.empty(2 * n, bool)
    keep[0] = True
    keep[1:] = (ev[1:] != ev[:-1]) | (gv[1:] != gv[:-1])
    if keep.all():
        return ev, gv, mk
    mk[:-1] = np.maximum(
        mk[:-1], np.where(keep[1:], _I(-1), mk[1:])
    )
    return ev[keep], gv[keep], mk[keep]


def _order_keys(vals: np.ndarray) -> np.ndarray:
    """Map float64 values to uint64 keys with the same total order.

    The IEEE-754 bit pattern is order-preserving for non-negative
    doubles; setting the sign bit lifts them above the negatives, whose
    sign-magnitude encoding is order-*reversed* and is fixed by a full
    bit flip.  ``-0.0`` and ``+0.0`` map to adjacent keys — callers
    only rely on the key order being *consistent with* float order, so
    equal floats may order either way.  NaNs are not handled (envelope
    coordinates are always comparable).
    """
    u = np.ascontiguousarray(vals).view(_U)
    return np.where(u & _SIGN_BIT, ~u, u | _SIGN_BIT)


def _group_offsets(groups: np.ndarray, n_groups: int) -> np.ndarray:
    """Segment boundaries (length ``n_groups + 1``) of a sorted
    group-id array."""
    return np.searchsorted(groups, np.arange(n_groups + 1))


def _pack_group_keys(
    n_groups: int,
    streams: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> Optional[list[np.ndarray]]:
    """Shift each group's keys into disjoint consecutive uint64 ranges.

    ``streams`` is a sequence of ``(keys, groups, offsets)`` triples —
    uint64 key arrays sorted within each group, the per-element group
    ids, and group segment ``offsets`` of length ``n_groups + 1``.  All
    streams share one group numbering; the per-group key range is taken
    over the union of the streams.  Returns the shifted key arrays,
    whose *global* numeric order equals the lexicographic
    ``(group, key)`` order — so a single flat ``searchsorted`` performs
    a segmented per-group search — or ``None`` when the combined
    per-group spans exceed 64 bits of key space (common once groups are
    numerous: each group's span covers its coordinates' exponent
    range).
    """
    mn = np.full(n_groups, np.uint64(0xFFFFFFFFFFFFFFFF), _U)
    mx = np.zeros(n_groups, _U)
    for keys, _groups, offs in streams:
        ne = offs[1:] > offs[:-1]
        mn[ne] = np.minimum(mn[ne], keys[offs[:-1][ne]])
        mx[ne] = np.maximum(mx[ne], keys[offs[1:][ne] - 1])
    adj = _pack_range_adjust(mn, mx, n_groups)
    if adj is None:
        return None
    return [keys + adj[groups] for keys, groups, _offs in streams]


def _pack_range_adjust(
    mn: np.ndarray, mx: np.ndarray, n_groups: int
) -> Optional[np.ndarray]:
    """Per-group additive shifts that pack key ranges ``[mn_g, mx_g]``
    into disjoint consecutive uint64 intervals: ``key + adj[g]`` is
    globally ordered by ``(group, key)``.  Mutates ``mn``/``mx`` for
    empty groups (``mn > mx``).  Returns ``None`` when the combined
    spans overflow 64 bits — detected by a zero span size (a
    full-range group wraps ``span + 1`` to 0) or a non-increasing
    cumulative sum (a wrapping step strictly decreases, since every
    size is below 2**64)."""
    empty = mn > mx
    if empty.any():
        mn[empty] = 0
        mx[empty] = 0
    sizes = (mx - mn) + np.uint64(1)  # wraps to 0 on a full-range span
    cs = np.cumsum(sizes)
    if n_groups > 1 and (
        bool((sizes == 0).any()) or not bool(np.all(cs[1:] > cs[:-1]))
    ):
        return None  # packed ranges overflow 64 bits
    # ``key - mn[g] + base[g]``: the result is always in range, so
    # wrapping uint64 arithmetic on the folded constant is exact.
    return (cs - sizes) - mn


def _composite_argsort(
    ys: np.ndarray, gs: np.ndarray, n_groups: int
) -> np.ndarray:
    """Composite (group, y) ordering as two argsort passes — the
    reference ordering for :func:`merge_sorted_streams` and its
    fallback.  Equivalent to ``np.lexsort((ys, gs))`` but faster: the
    group pass radix-sorts narrow integers.  Only the *second* pass
    must be stable (it preserves the y-order within each group); the
    y pass may reorder exact ties freely."""
    o1 = np.argsort(ys)
    gdt = np.int16 if n_groups < 2**15 else np.int32
    o2 = np.argsort(gs[o1].astype(gdt), kind="stable")
    return o1[o2]


def _segmented_searchsorted(
    b_vals: np.ndarray,
    b_off: np.ndarray,
    a_vals: np.ndarray,
    a_groups: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """For each ``a_vals[i]`` (group ``a_groups[i]``), the global index
    in ``b_vals`` where it would insert within its group segment — a
    segmented ``searchsorted`` as a vectorized branch-free binary
    search with per-element bounds.  Values may be any comparable
    dtype (raw floats are fine: comparisons never cross group
    boundaries).  Runs ``ceil(log2(max segment size))`` cheap array
    passes, so it is the fast path exactly when segments are small —
    deep build levels, and the regime where key packing overflows."""
    lo = b_off[a_groups]
    size = b_off[a_groups + 1] - lo
    if len(b_vals) == 0 or len(a_vals) == 0:
        return lo
    bp = np.append(b_vals, b_vals[:1])  # pad: converged lanes read past
    for _ in range(int(size.max()).bit_length()):
        half = size >> 1
        mid = lo + half
        if side == "left":
            cond = (bp[mid] < a_vals) & (size > 0)
        else:
            cond = (bp[mid] <= a_vals) & (size > 0)
        lo = np.where(cond, mid + 1, lo)
        size = np.where(cond, size - half - 1, half)
    return lo


#: Largest per-group segment for which the raw-float bounded binary
#: search beats the key-packed flat ``searchsorted`` (the search runs
#: ``ceil(log2(size))`` array passes, so small segments need few).
_BINSEARCH_MAX_SEGMENT = 16


def _merge_stream_positions(
    a_vals: np.ndarray,
    a_groups: np.ndarray,
    b_vals: np.ndarray,
    b_groups: np.ndarray,
    n_groups: int,
    a_off: Optional[np.ndarray] = None,
    b_off: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merged positions of two (group, value)-sorted streams.

    Returns ``(pos_a, pos_b)`` — for each element of either stream,
    its index in the (group, value)-sorted union.  This is the
    segmented two-way merge that replaces the per-level composite
    argsort in :func:`_sweep`: each side's breakpoint stream is already
    sorted within every group, so ordering their union is a merge, not
    a sort.  Elements of ``a`` precede equal elements of ``b``; the
    relative order of exact ties is otherwise unspecified (the merge
    sweep is insensitive to intra-``(group, value)`` event order).

    Only one side is actually searched, and ``pos_b`` is the
    complement — ``b`` fills the free slots in stream order.  The rank
    search of ``a`` into ``b`` picks its strategy by segment size:
    small ``b`` segments (deep build levels — the expensive ones) use
    the bounded raw-float binary search of
    :func:`_segmented_searchsorted` directly; large segments use
    one flat ``searchsorted`` over range-packed uint64 keys, falling
    back to the bounded search when the packing overflows.
    """
    na, nb = len(a_vals), len(b_vals)
    if a_off is None:
        a_off = _group_offsets(a_groups, n_groups)
    if b_off is None:
        b_off = _group_offsets(b_groups, n_groups)
    max_seg = int(np.max(np.diff(b_off))) if nb else 0
    if max_seg <= _BINSEARCH_MAX_SEGMENT:
        # Raw float comparisons are valid here: the search never
        # compares across group boundaries.
        pa = _segmented_searchsorted(
            b_vals, b_off, a_vals, a_groups
        )
    else:
        ka = _order_keys(a_vals)
        kb = _order_keys(b_vals)
        packed = _pack_group_keys(
            n_groups, ((ka, a_groups, a_off), (kb, b_groups, b_off))
        )
        if packed is not None:
            pa = np.searchsorted(packed[1], packed[0], side="left")
        else:
            pa = _segmented_searchsorted(kb, b_off, ka, a_groups)
    pos_a = np.arange(na, dtype=np.intp) + pa
    free = np.ones(na + nb, bool)
    free[pos_a] = False
    pos_b = np.flatnonzero(free)
    return pos_a, pos_b


def merge_sorted_streams(
    a_vals: np.ndarray,
    a_groups: np.ndarray,
    b_vals: np.ndarray,
    b_groups: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Merge permutation of two (group, value)-sorted float streams.

    Both streams must already be sorted by ``(group, value)``
    lexicographically (group ids in ``[0, n_groups)``).  Returns
    ``order`` such that ``np.concatenate([a_vals, b_vals])[order]`` is
    (group, value)-sorted.  See :func:`_merge_stream_positions` for
    the mechanics and tie conventions; this wrapper materialises the
    permutation for callers that want ``argsort``-shaped output.
    """
    pos_a, pos_b = _merge_stream_positions(
        a_vals, a_groups, b_vals, b_groups, n_groups
    )
    na, nb = len(a_vals), len(b_vals)
    order = np.empty(na + nb, np.intp)
    order[pos_a] = np.arange(na, dtype=np.intp)
    order[pos_b] = np.arange(na, na + nb, dtype=np.intp)
    return order


def _sweep(
    a: _Stacked,
    b: _Stacked,
    live: np.ndarray,
    eps: float,
    record_crossings: bool,
) -> tuple[np.ndarray, tuple]:
    """The vectorized merge sweep over all live groups.

    Returns ``(ops_per_live_group, output_arrays)`` where the output
    arrays carry *live-group-indexed* pieces in (group, y) order plus
    live-group offsets and crossing arrays (re-indexed to original
    group ids).
    """
    live_ids = np.flatnonzero(live)
    n_live = len(live_ids)

    if n_live == 0:
        e_f, e_i = np.empty(0, _F), np.empty(0, _I)
        return (
            np.empty(0, _I),
            (e_f, e_f, e_f, e_f, e_i, e_i, np.zeros(1, _I), e_i, e_f, e_f, e_i, e_i),
        )

    if n_live == a.n_groups:
        a_live, b_live = a, b
    else:
        a_live = _select_groups(a, live_ids)
        b_live = _select_groups(b, live_ids)
    ag = a_live.group_ids()
    bg = b_live.group_ids()

    na, nb = len(a_live.ya), len(b_live.ya)

    # Concatenated A|B piece arrays: one gather/eval pass serves both
    # sides of every interval.
    ab_ya = np.concatenate([a_live.ya, b_live.ya])
    ab_za = np.concatenate([a_live.za, b_live.za])
    ab_yb = np.concatenate([a_live.yb, b_live.yb])
    ab_zb = np.concatenate([a_live.zb, b_live.zb])
    ab_src = np.concatenate([a_live.source, b_live.source])
    ab_g = np.concatenate([ag, bg])

    # 1. Union breakpoints per group (the flat analogue of
    #    ``envelope_breakpoints``) plus, per unique bound, the last
    #    piece of each side starting at or before it.
    iv_pre = ops_pre = None  # offset-derived intervals (stream path)
    if na == n_live and nb == n_live:
        # Leaf-level fast path: every group is one piece vs one piece,
        # so each group's four endpoints merge with an odd-even
        # sorting network — no global sort needed.  This is the
        # largest level of a divide-and-conquer build.
        a0, a1 = a_live.ya, a_live.yb
        b0, b1 = b_live.ya, b_live.yb
        c0 = np.minimum(a0, b0)
        c3 = np.maximum(a1, b1)
        m1 = np.maximum(a0, b0)
        m2 = np.minimum(a1, b1)
        c1 = np.minimum(m1, m2)
        c2 = np.maximum(m1, m2)
        ev, bca, bcb, keep, _scr = _SWEEP_SCRATCH.take(4 * n_live)
        try:
            ev[0::4] = c0
            ev[1::4] = c1
            ev[2::4] = c2
            ev[3::4] = c3
            keep[0::4] = True
            keep[1::4] = c1 != c0
            keep[2::4] = c2 != c1
            keep[3::4] = c3 != c2
            ga = np.arange(n_live, dtype=_I)
            grp4 = np.repeat(ga, 4)
            # The single candidate piece of a side covers a bound
            # exactly when it starts at or before it (value-based, so
            # duplicate events collapse consistently with the generic
            # run-end rule).
            for k, ck in enumerate((c0, c1, c2, c3)):
                bca[k::4] = np.where(ck >= a0, ga, -1)
                bcb[k::4] = np.where(ck >= b0, ga, -1)
            # Boolean-mask gathers below copy out of the scratch rows,
            # so the arena can be released at the end of this step.
            ysu = ev[keep]
            gsu = grp4[keep]
            bound_cand_a = bca[keep]
            bound_cand_b = bcb[keep]
        finally:
            _SWEEP_SCRATCH.release(_scr)
    else:
        # Generic path: one sorted event sequence per level.  It
        # doubles as the point-location structure: a running maximum
        # over piece-start markers gives, at every bound, the last
        # piece of each side starting at or before it (a segmented
        # per-group ``searchsorted`` with no extra sort).
        #
        # Each side's interleaved endpoint stream ``[ya0, yb0, ya1,
        # yb1, ...]`` is already sorted within every group; contiguous
        # pieces duplicate their shared endpoint (``yb_i == ya_{i+1}``)
        # so an adjacent-dedup *before* the global sort shrinks it by
        # up to half, folding the dropped start's piece marker into
        # the kept event.
        ea, ga_s, ma = _endpoint_stream(a_live.ya, a_live.yb, ag, na)
        eb, gb_s, mb = _endpoint_stream(b_live.ya, b_live.yb, bg, nb)
        n_ev = len(ea) + len(eb)
        # Each side's stream is (group, y)-sorted, so the composite
        # order is a segmented two-way *merge* rather than a sort, the
        # merged event arrays assemble by scatter stores (no
        # permutation gathers), and merged group boundaries come from
        # stream-offset arithmetic — no per-event group array is ever
        # materialised.  The ablation toggle keeps the composite
        # argsort path of PR 1 measurable.
        _scr = False
        try:
            if USE_STREAM_MERGE and n_ev >= STREAM_MERGE_MIN_EVENTS:
                a_off = _group_offsets(ga_s, n_live)
                b_off = _group_offsets(gb_s, n_live)
                pos_a, pos_b = _merge_stream_positions(
                    ea, ga_s, eb, gb_s, n_live, a_off, b_off
                )
                ys_s, mark_a, mark_b, keep, _scr = _SWEEP_SCRATCH.take(
                    n_ev
                )
                ys_s[pos_a] = ea
                ys_s[pos_b] = eb
                mark_a.fill(-1)
                mark_a[pos_a] = ma
                mark_b.fill(-1)
                mark_b[pos_b] = mb
                # Merged group segment g is [a_off[g]+b_off[g], ...);
                # every live group has events, so all boundaries are
                # in range.
                ev_off = a_off + b_off
                keep[0] = True
                keep[1:] = ys_s[1:] != ys_s[:-1]
                keep[ev_off[:-1]] = True  # group starts always survive
                starts = np.flatnonzero(keep)
                ends = np.concatenate([starts[1:], [n_ev]]) - 1
                ysu = ys_s[starts]
                # Group of each unique bound, from the (exact)
                # positions of the group boundaries among the kept
                # events.
                if USE_GROUP_OFFSET_PREFIX:
                    # Offsets by prefix sum: the number of kept events
                    # strictly before boundary ``ev_off[g]`` *is* the
                    # group's first unique-bound index (every live
                    # group has events, so ``ev_off[1:]`` >= 1).
                    kept_cum = np.cumsum(keep)
                    ub_off = np.empty(n_live + 1, _I)
                    ub_off[0] = 0
                    ub_off[1:] = kept_cum[ev_off[1:] - 1]
                else:
                    ub_off = np.searchsorted(starts, ev_off)
                gsu = np.repeat(
                    np.arange(n_live, dtype=_I), np.diff(ub_off)
                )
                if USE_GROUP_OFFSET_PREFIX:
                    # Elementary intervals from offset arithmetic: all
                    # adjacent-bound pairs except the ones straddling
                    # a group boundary (each group keeps >= 1 bound,
                    # so interior offsets stay in mask range).
                    n_bounds_s = len(ysu)
                    iv_mask = np.ones(max(n_bounds_s - 1, 0), bool)
                    iv_mask[ub_off[1:-1] - 1] = False
                    iv_pre = np.flatnonzero(iv_mask)
                    ops_pre = np.diff(ub_off) - 1
            else:
                ys = np.concatenate([ea, eb])
                gs = np.concatenate([ga_s, gb_s])
                order = _composite_argsort(ys, gs, n_live)
                ys_s = ys[order]
                gs_s = gs[order]
                mark_a = np.full(n_ev, -1, _I)
                mark_a[: len(ea)] = ma
                mark_a = mark_a[order]
                mark_b = np.full(n_ev, -1, _I)
                mark_b[len(ea) :] = mb
                mark_b = mark_b[order]
                keep = np.empty(n_ev, bool)
                keep[0] = True
                keep[1:] = (ys_s[1:] != ys_s[:-1]) | (
                    gs_s[1:] != gs_s[:-1]
                )
                starts = np.flatnonzero(keep)
                ends = np.concatenate([starts[1:], [n_ev]]) - 1
                ysu = ys_s[starts]
                gsu = gs_s[starts]
            # Piece indices increase along the sorted order within a
            # group (stacks are (group, ya)-sorted), so the running
            # max is "the most recent"; taking it at the *end* of each
            # equal-(g, y) run makes a piece starting exactly at ``u``
            # cover ``u`` (``p.ya <= u`` inclusive).  The accumulates
            # and gathers copy out of any scratch rows, after which
            # the arena is free for the next level.
            cum_a = np.maximum.accumulate(mark_a)
            cum_b = np.maximum.accumulate(mark_b)
            bound_cand_a = cum_a[ends]
            bound_cand_b = cum_b[ends]
        finally:
            _SWEEP_SCRATCH.release(_scr)

    # 2. Elementary intervals (u, v) within each group.
    if iv_pre is not None:
        iv, ops = iv_pre, ops_pre
    else:
        iv = np.flatnonzero(gsu[1:] == gsu[:-1])
        ops = None
    u = ysu[iv]
    v = ysu[iv + 1]
    gi = gsu[iv]
    n_iv = len(u)
    if ops is None:
        ops = np.bincount(gi, minlength=n_live)

    # 3. Evaluate each side once per *unique bound* (candidate piece
    #    heights), stacked [A-bounds | B-bounds].  Absolute indices
    #    into the concatenated A|B arrays; the B side offsets by
    #    ``na``.  The candidate piece fields and validity are gathered
    #    once here and re-used by the per-interval step below — the
    #    group check folds into the bound-level validity, so step 4
    #    never re-gathers from the piece arrays.
    n_bounds = len(ysu)
    bc2 = np.concatenate(
        [bound_cand_a, np.where(bound_cand_b >= 0, bound_cand_b + na, -1)]
    )
    bi2 = np.clip(bc2, 0, None)
    yb_b2 = ab_yb[bi2]
    zb_b2 = ab_zb[bi2]
    z_bound2 = _z_eval(
        ab_ya[bi2],
        ab_za[bi2],
        yb_b2,
        zb_b2,
        np.concatenate([ysu, ysu]),
    )
    # A candidate covers onward intervals only when it is real and
    # belongs to the bound's own group (the running max carries the
    # previous group's last piece across group boundaries).
    valid_b2 = (bc2 >= 0) & (ab_g[bi2] == np.concatenate([gsu, gsu]))

    # 4. Per-interval covers and endpoint heights, stacked [A | B].
    #    The height at ``u`` is the bound evaluation itself; the
    #    height at ``v`` reuses the next bound's evaluation when the
    #    piece continues past ``v`` (same covering piece, pieces
    #    cannot overlap) and is the piece's exact ``zb`` when it ends
    #    there — precisely the scalar ``z_at`` endpoint shortcut.
    iv2 = np.concatenate([iv, iv + n_bounds])
    i2 = bi2[iv2]
    vv = np.concatenate([v, v])
    yb_i2 = yb_b2[iv2]
    cover2 = valid_b2[iv2] & (yb_i2 >= vv)
    cover_a, cover_b = cover2[:n_iv], cover2[n_iv:]
    ia, ib = i2[:n_iv], i2[n_iv:]  # absolute indices into ab_* arrays
    z_u2 = z_bound2[iv2]
    z_v2 = np.where(yb_i2 == vv, zb_b2[iv2], z_bound2[iv2 + 1])
    za_u, zb_u = z_u2[:n_iv], z_u2[n_iv:]
    za_v, zb_v = z_v2[:n_iv], z_v2[n_iv:]

    # 5. Dominance signs (0 within eps — the tie band where ``a`` wins).
    both = cover_a & cover_b
    du = za_u - zb_u
    dv = za_v - zb_v
    su = (du > eps).astype(np.int8)
    su -= du < -eps
    sv = (dv > eps).astype(np.int8)
    sv -= dv < -eps
    a_dom = both & (su >= 0) & (sv >= 0)
    b_dom = both & ~a_dom & (su <= 0) & (sv <= 0)
    cross_raw = np.flatnonzero(both & ~a_dom & ~b_dom)

    # 6. Crossing point; numerically clamped crossings degrade to
    #    one-sided dominance exactly as in the scalar code.
    duc = du[cross_raw]
    dvc = dv[cross_raw]
    t = duc / (duc - dvc)
    w = u[cross_raw] + t * (v[cross_raw] - u[cross_raw])
    degenerate = (w <= u[cross_raw]) | (w >= v[cross_raw])
    if degenerate.any():
        deg = cross_raw[degenerate]
        a_side = (su[deg] > 0) | (sv[deg] < 0)
        a_dom[deg[a_side]] = True
        b_dom[deg[~a_side]] = True
    cross = cross_raw[~degenerate]
    w = w[~degenerate]
    first_is_a = su[cross] > 0

    # 7. Heights at the crossing, per supporting piece (both sides
    #    stacked into one evaluation).
    n_x = len(cross)
    idxx = np.concatenate([ia[cross], ib[cross]])
    wx = np.concatenate([w, w])
    zw_ab = _z_eval(
        ab_ya[idxx], ab_za[idxx], ab_yb[idxx], ab_zb[idxx], wx
    )
    zw_a, zw_b = zw_ab[:n_x], zw_ab[n_x:]

    # 8. Emit output pieces: one per dominated interval, two per
    #    crossing interval, in (group, y) order by construction.
    emit_a = (cover_a & ~cover_b) | a_dom
    n_x = len(cross)
    if n_x:
        src_a = ab_src[ia[cross]]
        src_b = ab_src[ib[cross]]

    if USE_RUN_EMISSION and not bool((ab_src < 0).any()):
        # Run-length boundary emission: the EnvelopeBuilder join
        # conditions are decided *per interval* (consecutive emitted
        # intervals of one group are y-contiguous by construction, so
        # contiguity is interval adjacency), runs of joinable pieces
        # are found on a boolean piece stream, and the output values
        # are gathered once, directly at the run boundaries — no
        # full-width scatter-then-compress round trip.  Synthetic
        # (negative) sources coalesce on a different builder rule and
        # take the two-pass emission below.
        any_emit = emit_a | (cover_b & ~cover_a) | b_dom
        any_emit[cross] = True
        e = np.flatnonzero(any_emit)
        n_e = len(e)
        ea_e = emit_a[e]
        icr_e = np.zeros(n_iv, bool)
        icr_e[cross] = True
        icr_e = icr_e[e]
        if n_x:
            fia = np.zeros(n_iv, bool)
            fia[cross] = first_is_a
            fia_e = fia[e]
            first_a = np.where(icr_e, fia_e, ea_e)
            last_a = np.where(icr_e, ~fia_e, ea_e)
            src_f = ab_src[np.where(first_a, ia[e], ib[e])]
            src_l = ab_src[np.where(last_a, ia[e], ib[e])]
        else:
            first_a = last_a = ea_e
            src_f = src_l = ab_src[np.where(ea_e, ia[e], ib[e])]
        z_f = np.where(first_a, za_u[e], zb_u[e])
        z_l = np.where(last_a, za_v[e], zb_v[e])
        gi_e = gi[e]

        jb = np.empty(n_e, bool)
        if n_e:
            jb[0] = False
            jb[1:] = (
                (e[1:] == e[:-1] + 1)
                & (gi_e[1:] == gi_e[:-1])
                & (src_f[1:] == src_l[:-1])
                & (np.abs(z_f[1:] - z_l[:-1]) <= eps)
            )
        counts_e = np.ones(n_e, _I)
        counts_e[icr_e] = 2
        offs_e = np.cumsum(counts_e)
        n_out = int(offs_e[-1]) if n_e else 0
        offs_e -= counts_e
        startp = np.empty(n_out, bool)
        startp[offs_e] = ~jb
        if n_x:
            # Crossing midpoints join exactly when the two sides share
            # a source and meet within eps (they nearly meet at the
            # crossing by construction, so the z test is about ties).
            jm = (src_a == src_b) & (np.abs(zw_a - zw_b) <= eps)
            sec_pos = offs_e[icr_e] + 1
            startp[sec_pos] = ~jm
            w_e = np.empty(n_e, _F)
            zwf_e = np.empty(n_e, _F)
            zws_e = np.empty(n_e, _F)
            srcs_e = np.empty(n_e, _I)
            w_e[icr_e] = w
            zwf_e[icr_e] = np.where(first_is_a, zw_a, zw_b)
            zws_e[icr_e] = np.where(first_is_a, zw_b, zw_a)
            srcs_e[icr_e] = np.where(first_is_a, src_b, src_a)
        pe = np.repeat(np.arange(n_e, dtype=np.intp), counts_e)
        runs = np.flatnonzero(startp)
        n_runs = len(runs)
        ends = np.empty(n_runs, np.intp)
        if n_runs:
            ends[:-1] = runs[1:] - 1
            ends[-1] = n_out - 1
        s_e = pe[runs]
        e_e = pe[ends]
        if n_x:
            is2 = np.zeros(n_out, bool)
            is2[sec_pos] = True
            s2 = is2[runs]
            # A run may end on the *first* half of a crossing.
            ef = icr_e[e_e] & ~is2[ends]
            out_ya = np.where(s2, w_e[s_e], u[e[s_e]])
            out_za = np.where(s2, zws_e[s_e], z_f[s_e])
            out_src = np.where(s2, srcs_e[s_e], src_f[s_e])
            out_yb = np.where(ef, w_e[e_e], v[e[e_e]])
            out_zb = np.where(ef, zwf_e[e_e], z_l[e_e])
        else:
            out_ya = u[e[s_e]]
            out_za = z_f[s_e]
            out_src = src_f[s_e]
            out_yb = v[e[e_e]]
            out_zb = z_l[e_e]
        out_grp = gi_e[s_e]
    else:
        emit = emit_a | (cover_b & ~cover_a) | b_dom
        counts = emit.astype(_I)
        counts[cross] = 2
        offs = np.cumsum(counts) - counts
        n_out = int(counts.sum())

        out_ya = np.empty(n_out, _F)
        out_za = np.empty(n_out, _F)
        out_yb = np.empty(n_out, _F)
        out_zb = np.empty(n_out, _F)
        out_src = np.empty(n_out, _I)
        out_grp = np.empty(n_out, _I)

        sel = np.flatnonzero(emit)
        ea = emit_a[sel]  # winner side of each single-piece interval
        pos = offs[sel]
        out_ya[pos] = u[sel]
        out_za[pos] = np.where(ea, za_u[sel], zb_u[sel])
        out_yb[pos] = v[sel]
        out_zb[pos] = np.where(ea, za_v[sel], zb_v[sel])
        out_src[pos] = ab_src[np.where(ea, ia[sel], ib[sel])]
        out_grp[pos] = gi[sel]

        if n_x:
            p1 = offs[cross]
            out_ya[p1] = u[cross]
            out_za[p1] = np.where(first_is_a, za_u[cross], zb_u[cross])
            out_yb[p1] = w
            out_zb[p1] = np.where(first_is_a, zw_a, zw_b)
            out_src[p1] = np.where(first_is_a, src_a, src_b)
            out_grp[p1] = gi[cross]
            p2 = p1 + 1
            out_ya[p2] = w
            out_za[p2] = np.where(first_is_a, zw_b, zw_a)
            out_yb[p2] = v[cross]
            out_zb[p2] = np.where(first_is_a, zb_v[cross], za_v[cross])
            out_src[p2] = np.where(first_is_a, src_b, src_a)
            out_grp[p2] = gi[cross]

        # 9. Coalesce contiguous same-source pieces (EnvelopeBuilder
        #    rules).
        if n_out and bool((out_src < 0).any()):
            # Synthetic (source -1) pieces coalesce on a
            # *mutated-slope* condition that is inherently sequential;
            # fall back to the reference builder per group (rare
            # outside tests).
            out_ya, out_za, out_yb, out_zb, out_src, out_grp = (
                _coalesce_python(
                    out_ya, out_za, out_yb, out_zb, out_src, out_grp, eps
                )
            )
        elif n_out:
            join = np.empty(n_out, bool)
            join[0] = False
            join[1:] = (
                (out_src[1:] == out_src[:-1])
                & (out_grp[1:] == out_grp[:-1])
                & (out_ya[1:] == out_yb[:-1])
                & (np.abs(out_za[1:] - out_zb[:-1]) <= eps)
            )
            starts = np.flatnonzero(~join)
            ends = np.concatenate([starts[1:], [n_out]]) - 1
            out_ya = out_ya[starts]
            out_za = out_za[starts]
            out_yb = out_yb[ends]
            out_zb = out_zb[ends]
            out_src = out_src[starts]
            out_grp = out_grp[starts]

    live_counts = np.bincount(out_grp, minlength=n_live)
    live_offsets = np.concatenate([[0], np.cumsum(live_counts)])

    # 10. Crossing records (in (group, y) order), original group ids.
    if record_crossings and len(cross):
        cg = live_ids[gi[cross]]
        cy = w
        cz = zw_a  # the scalar code records ``pa.z_at(w)``
        cf = np.where(first_is_a, src_a, src_b)
        cbk = np.where(first_is_a, src_b, src_a)
    else:
        cg = np.empty(0, _I)
        cy = np.empty(0, _F)
        cz = np.empty(0, _F)
        cf = np.empty(0, _I)
        cbk = np.empty(0, _I)

    return (
        ops,
        (
            out_ya,
            out_za,
            out_yb,
            out_zb,
            out_src,
            live_ids[out_grp] if len(out_grp) else out_grp,
            live_offsets,
            cg,
            cy,
            cz,
            cf,
            cbk,
        ),
    )


def _select_groups(st: _Stacked, ids: np.ndarray) -> _Stacked:
    """Sub-stack containing only the given groups, renumbered densely."""
    counts = st.counts()[ids]
    offsets = np.concatenate([[0], np.cumsum(counts)])
    take = np.concatenate(
        [
            np.arange(st.offsets[g], st.offsets[g + 1])
            for g in ids.tolist()
        ]
    ) if len(ids) else np.empty(0, _I)
    take = take.astype(np.intp)
    return _Stacked(
        st.ya[take],
        st.za[take],
        st.yb[take],
        st.zb[take],
        st.source[take],
        offsets.astype(_I),
    )


def _coalesce_python(
    ya: np.ndarray,
    za: np.ndarray,
    yb: np.ndarray,
    zb: np.ndarray,
    src: np.ndarray,
    grp: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, ...]:
    """Reference (per-group ``EnvelopeBuilder``) coalescing fallback."""
    out_p: list[Piece] = []
    out_g: list[int] = []
    builder: Optional[EnvelopeBuilder] = None
    cur = None
    for i in range(len(ya)):
        g = int(grp[i])
        if g != cur:
            if builder is not None:
                for p in builder.build().pieces:
                    out_p.append(p)
                    out_g.append(cur)  # type: ignore[arg-type]
            builder = EnvelopeBuilder(eps)
            cur = g
        builder.add(
            Piece(
                float(ya[i]),
                float(za[i]),
                float(yb[i]),
                float(zb[i]),
                int(src[i]),
            )
        )
    if builder is not None:
        for p in builder.build().pieces:
            out_p.append(p)
            out_g.append(cur)  # type: ignore[arg-type]
    return (
        np.array([p.ya for p in out_p], _F),
        np.array([p.za for p in out_p], _F),
        np.array([p.yb for p in out_p], _F),
        np.array([p.zb for p in out_p], _F),
        np.array([p.source for p in out_p], _I),
        np.array(out_g, _I),
    )


def merge_envelopes_flat(
    a: FlatEnvelope | Envelope,
    b: FlatEnvelope | Envelope,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
) -> FlatMergeResult:
    """Point-wise maximum of two envelopes, fully vectorized.

    Produces exactly the pieces, crossings and ``ops`` of
    :func:`repro.envelope.merge.merge_envelopes` (ties prefer ``a``).
    """
    fa = a if isinstance(a, FlatEnvelope) else FlatEnvelope.from_envelope(a)
    fb = b if isinstance(b, FlatEnvelope) else FlatEnvelope.from_envelope(b)
    if not len(fa):
        return FlatMergeResult(fb, [], len(fb))
    if not len(fb):
        return FlatMergeResult(fa, [], len(fa))
    res = batch_merge(
        stack_envelopes([fa]), stack_envelopes([fb]), eps=eps, record_crossings=record_crossings
    )
    return FlatMergeResult(
        res.merged.group(0), res.crossings_of(0), int(res.ops[0])
    )


class FlatBuildResult:
    """Level-batched divide-and-conquer construction output.

    ``node_ops`` / ``node_crossings`` are keyed by the recursion range
    ``(lo, hi)`` so callers can replay the reference engine's exact
    PRAM charge sequence and crossing collection order.  Crossing
    values are ``(y, z, front, back)`` array 4-tuples (only nodes with
    at least one crossing appear); :meth:`FlatBuildResult.crossings_of`
    materialises :class:`Crossing` records.  The per-node ops dict is
    built lazily from the per-level ops arrays — tracker-free callers
    only need :attr:`total_merge_ops`.
    """

    __slots__ = (
        "envelope",
        "node_crossings",
        "n_segments",
        "_level_nodes",
        "_level_ops",
        "_node_ops",
    )

    def __init__(
        self,
        envelope: FlatEnvelope,
        node_crossings: dict[
            tuple[int, int],
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        ],
        n_segments: int,
        level_nodes: Sequence[Sequence[tuple[int, int]]],
        level_ops: Sequence[np.ndarray],
    ):
        self.envelope = envelope
        self.node_crossings = node_crossings
        self.n_segments = n_segments
        self._level_nodes = level_nodes
        self._level_ops = level_ops
        self._node_ops: Optional[dict[tuple[int, int], int]] = None

    @property
    def node_ops(self) -> dict[tuple[int, int], int]:
        if self._node_ops is None:
            d: dict[tuple[int, int], int] = {}
            for nodes, ops in zip(self._level_nodes, self._level_ops):
                d.update(zip(nodes, ops.tolist()))
            self._node_ops = d
        return self._node_ops

    @property
    def total_merge_ops(self) -> int:
        """Sum of all merge elementary-interval counts (leaf charges
        excluded)."""
        return int(sum(int(ops.sum()) for ops in self._level_ops))

    def crossings_of(self, node: tuple[int, int]) -> list[Crossing]:
        arrs = self.node_crossings.get(node)
        if arrs is None:
            return []
        y, z, f, b = arrs
        return [
            Crossing(*args)
            for args in zip(
                y.tolist(), z.tolist(), f.tolist(), b.tolist()
            )
        ]

    def collect_crossings(
        self, order: Sequence[tuple[int, int]]
    ) -> list[Crossing]:
        """All crossings, nodes visited in ``order`` — materialised in
        one concatenated pass rather than per node."""
        picked = [
            self.node_crossings[node]
            for node in order
            if node in self.node_crossings
        ]
        if not picked:
            return []
        ys = np.concatenate([p[0] for p in picked]).tolist()
        zs = np.concatenate([p[1] for p in picked]).tolist()
        fs = np.concatenate([p[2] for p in picked]).tolist()
        bs = np.concatenate([p[3] for p in picked]).tolist()
        return list(map(Crossing._make, zip(ys, zs, fs, bs)))


@lru_cache(maxsize=64)
def _recursion_levels(
    m: int,
) -> tuple[
    tuple[
        tuple[tuple[int, int], ...],
        tuple[tuple[int, int], ...],
        tuple[tuple[int, int], ...],
    ],
    ...,
]:
    """Breadth-first levels of the reference D&C recursion over ``m``
    segments (split at ``(lo + hi) // 2``), each level as
    ``(nodes, internals, leaves)``.  Leaf nodes (``hi - lo == 1``)
    occur on at most the two deepest levels.  Cached: the tree shape
    depends only on ``m``.
    """
    out = []
    nodes: tuple[tuple[int, int], ...] = ((0, m),)
    while nodes:
        internals = tuple(n for n in nodes if n[1] - n[0] >= 2)
        leaves = tuple(n for n in nodes if n[1] - n[0] == 1)
        out.append((nodes, internals, leaves))
        nodes = tuple(
            child
            for (lo, hi) in internals
            for child in ((lo, (lo + hi) // 2), ((lo + hi) // 2, hi))
        )
    return tuple(out)


@lru_cache(maxsize=64)
def _postorder_index(m: int) -> dict[tuple[int, int], int]:
    """Node -> position in the reference post-order (cached per ``m``);
    lets callers order a sparse node subset without scanning the whole
    tree."""
    return {
        node: i for i, node in enumerate(_recursion_postorder(m))
    }


@lru_cache(maxsize=64)
def _recursion_postorder(m: int) -> tuple[tuple[int, int], ...]:
    """Internal nodes of the reference recursion in post-order (left
    subtree, right subtree, node) — the order in which the reference
    engine collects merge results.  Cached per ``m``."""
    out: list[tuple[int, int]] = []

    def walk(lo: int, hi: int) -> None:
        if hi - lo <= 1:
            return
        mid = (lo + hi) // 2
        walk(lo, mid)
        walk(mid, hi)
        out.append((lo, hi))

    walk(0, m)
    return tuple(out)


def _split_children(st: _Stacked) -> tuple[_Stacked, _Stacked]:
    """Even-index groups as one stack, odd-index groups as another.

    A recursion level's nodes are exactly ``(left, right)`` child pairs
    of the level above, in parent order — so the A/B inputs of a level
    batch are the even/odd groups of the level below.
    """
    gids = st.group_ids()
    counts = st.counts()
    # Integer index gathers: one mask scan total instead of one
    # per field.
    even = np.flatnonzero((gids & 1) == 0)
    odd = np.flatnonzero(gids & 1)
    a_off = np.concatenate([[0], np.cumsum(counts[0::2])]).astype(_I)
    b_off = np.concatenate([[0], np.cumsum(counts[1::2])]).astype(_I)
    return (
        _Stacked(
            st.ya[even],
            st.za[even],
            st.yb[even],
            st.zb[even],
            st.source[even],
            a_off,
        ),
        _Stacked(
            st.ya[odd],
            st.za[odd],
            st.yb[odd],
            st.zb[odd],
            st.source[odd],
            b_off,
        ),
    )


def build_envelope_flat(
    segments: Sequence[ImageSegment],
    *,
    eps: float = EPS,
    record_crossings: bool = True,
) -> FlatBuildResult:
    """Upper envelope by *level-batched* divide and conquer.

    The recursion tree is identical to the reference
    :func:`repro.envelope.build.build_envelope` (split at
    ``(lo + hi) // 2``); all merges of one tree level are independent,
    so each level executes as a single :func:`batch_merge` call over
    level-wide stacked arrays.  The per-node elementary-interval
    counts — the PRAM work charges — are returned so the caller can
    reproduce the reference tracker costs exactly.
    """
    # One C-level pass turns the segment list into a (m, 5) matrix
    # (ImageSegment is a flat NamedTuple); vertical projections drop
    # out with a vectorized filter.
    all_mat = (
        _tuples_to_matrix(segments)
        if len(segments)
        else np.empty((0, 5), _F)
    )
    seg_mat = all_mat[all_mat[:, 0] != all_mat[:, 2]]
    m = len(seg_mat)
    if m == 0:
        return FlatBuildResult(FlatEnvelope.empty(), {}, 0, (), ())

    levels = _recursion_levels(m)

    level_nodes: list[tuple[tuple[int, int], ...]] = []
    level_ops: list[np.ndarray] = []
    node_crossings: dict[
        tuple[int, int],
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ] = {}

    def leaf_stack(nodes: Sequence[tuple[int, int]]) -> _Stacked:
        # Leaf ``lo`` indices are ascending; a full level of leaves is
        # a contiguous range (no gather needed).
        first, last = nodes[0][0], nodes[-1][0]
        if last - first + 1 == len(nodes):
            sub = seg_mat[first : last + 1]
        else:
            los = np.fromiter(
                (n[0] for n in nodes), dtype=np.intp, count=len(nodes)
            )
            sub = seg_mat[los]
        return _Stacked(
            np.ascontiguousarray(sub[:, 0]),
            np.ascontiguousarray(sub[:, 1]),
            np.ascontiguousarray(sub[:, 2]),
            np.ascontiguousarray(sub[:, 3]),
            sub[:, 4].astype(_I),
            np.arange(len(nodes) + 1, dtype=_I),
        )

    below: Optional[_Stacked] = None  # stack over the level just done
    for depth in range(len(levels) - 1, -1, -1):
        nodes, internals, leaves = levels[depth]

        merged: Optional[_Stacked] = None
        if internals:
            assert below is not None
            lefts, rights = _split_children(below)
            # Every node of a build level is non-empty (vertical
            # segments were filtered), so the sweep runs directly —
            # no empty-side stitching needed.
            ops, out = _sweep(
                lefts,
                rights,
                np.ones(len(internals), bool),
                eps,
                record_crossings,
            )
            merged = _Stacked(
                out[0], out[1], out[2], out[3], out[4], out[6]
            )
            cross_group, cross_y, cross_z, cross_f, cross_b = out[7:12]
            level_nodes.append(internals)
            level_ops.append(ops)
            if record_crossings and len(cross_group):
                bounds = np.searchsorted(
                    cross_group, np.arange(len(internals) + 1)
                )
                for g in np.flatnonzero(np.diff(bounds) > 0).tolist():
                    clo, chi = int(bounds[g]), int(bounds[g + 1])
                    node_crossings[internals[g]] = (
                        cross_y[clo:chi],
                        cross_z[clo:chi],
                        cross_f[clo:chi],
                        cross_b[clo:chi],
                    )

        if not leaves:
            assert merged is not None
            below = merged
        elif not internals:
            below = leaf_stack(leaves)
        else:
            # Mixed level (non-power-of-two m): interleave leaf
            # singletons and merged groups back into node order.
            lstack = leaf_stack(leaves)
            assert merged is not None
            parts: list[FlatEnvelope] = []
            li = mi = 0
            for node in nodes:
                if node[1] - node[0] == 1:
                    parts.append(lstack.group(li))
                    li += 1
                else:
                    parts.append(merged.group(mi))
                    mi += 1
            below = stack_envelopes(parts)

    assert below is not None and below.n_groups == 1
    return FlatBuildResult(
        below.group(0), node_crossings, m, level_nodes, level_ops
    )
