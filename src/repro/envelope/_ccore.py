"""Loader + thin wrapper for the compiled fused-insert core.

``repro.envelope._repro_ccore`` (built by :mod:`._ccore_build`; see
that module for the bit-exactness and buffer-ownership contracts) is
an **optional** cffi API-mode extension — compiled wheels ship it, a
no-compiler install simply doesn't have it, and ``REPRO_COMPILED=0``
disables it even when present.  This module absorbs all three cases
behind two flags and two functions:

``HAVE_CCORE``
    The extension imported.

``COMPILED_DEFAULT``
    The shipped default for ``flat_splice.USE_COMPILED_INSERT`` —
    ``HAVE_CCORE`` unless the environment opts out.

``insert_packed(profile, seg, eps)``
    The hot path: one C call that locates, sweeps and splices in
    place.  Returns ``(visibility, total_ops, synced)`` or ``None``
    when the C core declines (synthetic sources in the window, scratch
    OOM) and the Python cascade should run instead.  Raises
    :class:`CCoreFault` when the C-side post-condition rejects the
    merged window — nothing was committed, so the caller's guard
    machinery can retry through the reference path.

``compute(profile, seg, eps)``
    The checked path: same sweep, ``commit=0`` — **no mutation**.
    Returns the merged window as Python lists so the guard layer can
    validate (and fault injection corrupt) them before the commit goes
    through :meth:`PackedProfile.splice`, keeping the ``packed_splice``
    guard site live under injection.

Only :mod:`repro.envelope.visibility` is imported here —
``flat_splice`` imports *us*, never the reverse.
"""

from __future__ import annotations

import os

from repro.envelope.visibility import VisibilityResult, VisiblePart

try:  # pragma: no cover - exercised via the CI wheel/no-compiler legs
    from repro.envelope import _repro_ccore as _cc
except ImportError:  # no compiler at install time, or build skipped
    _cc = None

HAVE_CCORE = _cc is not None

#: Status codes returned by ``repro_fused_insert`` (keep in sync with
#: the ``ST_*`` defines in ``_ccore_build.py``).
ST_HIDDEN = 0
ST_DONE = 1
ST_GROW = 2
ST_FALLBACK = 3
ST_FAULT = 5


def _env_enabled() -> bool:
    return os.environ.get("REPRO_COMPILED", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


#: Shipped default for ``flat_splice.USE_COMPILED_INSERT``.
COMPILED_DEFAULT = HAVE_CCORE and _env_enabled()


class CCoreFault(RuntimeError):
    """The C-side merged-window post-condition failed pre-commit."""

    site = "compiled_insert"


if HAVE_CCORE:
    ffi = _cc.ffi
    lib = _cc.lib

    # Reusable out-params: the core runs under the GIL and never calls
    # back into Python, so one set per process is safe.
    _STATE = ffi.new("int64_t[2]")
    _OUT = ffi.new("int64_t[8]")

    # from_buffer is ~µs-scale; cache the cdata pointer per backing
    # buffer (PackedProfile replaces ``_buf`` wholesale on growth, so
    # identity is the correct cache key).
    _last_buf = None
    _last_ptr = None

    def _buf_ptr(buf):
        global _last_buf, _last_ptr
        if buf is _last_buf:
            return _last_ptr
        ptr = ffi.from_buffer("double[]", buf.reshape(-1))
        _last_buf = buf
        _last_ptr = ptr
        return ptr

    def _visibility(out) -> VisibilityResult:
        np_, nc = out[0], out[1]
        pp = lib.repro_parts_ptr()
        parts = [VisiblePart(pp[2 * j], pp[2 * j + 1]) for j in range(np_)]
        if nc:
            cp = lib.repro_cross_ptr()
            cross = [(cp[2 * j], cp[2 * j + 1]) for j in range(nc)]
        else:
            cross = []
        return VisibilityResult(parts, cross, out[2])

    def _merged_lists(out):
        k = out[7]
        return (
            list(ffi.unpack(lib.repro_merged_ptr(0), k)),
            list(ffi.unpack(lib.repro_merged_ptr(1), k)),
            list(ffi.unpack(lib.repro_merged_ptr(2), k)),
            list(ffi.unpack(lib.repro_merged_ptr(3), k)),
            list(ffi.unpack(lib.repro_merged_src_ptr(), k)),
        )

    def insert_packed(profile, seg, eps: float):
        """One C call: locate + fused sweep + in-place splice.

        Returns ``(VisibilityResult, total_ops)`` on success (the
        profile is mutated in place; object identity is preserved,
        matching :meth:`PackedProfile.splice`), or ``None`` when the
        core declines and the Python cascade should handle the insert.
        """
        buf = profile._buf
        _STATE[0] = profile._beg
        _STATE[1] = profile._end
        st = lib.repro_fused_insert(
            _buf_ptr(buf),
            buf.shape[1],
            _STATE,
            seg.y1,
            seg.z1,
            seg.y2,
            seg.z2,
            seg.source,
            eps,
            1,
            _OUT,
        )
        if st == ST_HIDDEN:
            return _visibility(_OUT), _OUT[3]
        if st == ST_DONE:
            if _OUT[4]:
                profile._beg = _STATE[0]
                profile._end = _STATE[1]
                profile._sync_views()
            return _visibility(_OUT), _OUT[3]
        if st == ST_GROW:
            # The packed buffer can't absorb the growth: read the
            # merged window out of C scratch *before* anything else
            # can clobber it, then let PackedProfile.splice own the
            # amortized-doubling reallocation.
            vis = _visibility(_OUT)
            mya, mza, myb, mzb, msrc = _merged_lists(_OUT)
            profile.splice(_OUT[5], _OUT[6], mya, mza, myb, mzb, msrc)
            return vis, _OUT[3]
        if st == ST_FAULT:
            raise CCoreFault("compiled insert post-condition failed")
        return None  # ST_FALLBACK

    def compute(profile, seg, eps: float):
        """The sweep without the commit (``commit=0``, no mutation).

        Returns ``(lo, hi, VisibilityResult, merged_lists_or_None,
        total_ops)`` or ``None`` on fallback.  ``merged_lists`` come
        back as plain Python lists so the guard layer's checks (and
        fault injection's corruptions) apply unchanged; the caller
        commits through :meth:`PackedProfile.splice`.
        """
        buf = profile._buf
        _STATE[0] = profile._beg
        _STATE[1] = profile._end
        st = lib.repro_fused_insert(
            _buf_ptr(buf),
            buf.shape[1],
            _STATE,
            seg.y1,
            seg.z1,
            seg.y2,
            seg.z2,
            seg.source,
            eps,
            0,
            _OUT,
        )
        if st == ST_HIDDEN:
            return _OUT[5], _OUT[6], _visibility(_OUT), None, _OUT[3]
        if st == ST_GROW:  # commit=0 always reports GROW when visible
            return (
                _OUT[5],
                _OUT[6],
                _visibility(_OUT),
                _merged_lists(_OUT),
                _OUT[3],
            )
        return None  # ST_FALLBACK

else:  # pragma: no cover - the no-compiler install
    ffi = None
    lib = None

    def insert_packed(profile, seg, eps: float):
        return None

    def compute(profile, seg, eps: float):
        return None
