"""Upper-profile (envelope) representation.

An :class:`Envelope` is the point-wise maximum of a set of image-plane
segments: a monotone (in ``y``) sequence of non-overlapping linear
*pieces*, with implicit gaps (value ``-inf``) where no segment is
present.  This is the paper's "upper profile" / "silhouette".

Envelopes here are array-backed and immutable-by-convention: all
mutating algorithms (:mod:`repro.envelope.merge`,
``Envelope.insert_segment``) return new envelopes.  The persistent
treap-backed representation used by the ACG phase-2 path lives in
:mod:`repro.persistence`.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

from repro.errors import EnvelopeError
from repro.geometry.primitives import EPS, NEG_INF, Point2, lerp
from repro.geometry.segments import ImageSegment

__all__ = ["Piece", "Envelope"]


class Piece(NamedTuple):
    """One linear piece of an envelope over ``[ya, yb]``.

    ``source`` is the terrain-edge index whose segment supports the
    piece (``-1`` for synthetic pieces).  Pieces always have
    ``ya < yb``; point supports are not stored (see the note on
    vertical segments in :mod:`repro.geometry.segments`).
    """

    ya: float
    za: float
    yb: float
    zb: float
    source: int

    def z_at(self, y: float) -> float:
        """Height of the piece's supporting line at ``y`` (exact at
        the endpoints)."""
        if y == self.ya:
            return self.za
        if y == self.yb:
            return self.zb
        t = (y - self.ya) / (self.yb - self.ya)
        return lerp(self.za, self.zb, t)

    @property
    def slope(self) -> float:
        return (self.zb - self.za) / (self.yb - self.ya)

    def clipped(self, u: float, v: float) -> "Piece":
        """The sub-piece over ``[u, v] ⊆ [ya, yb]``."""
        if u < self.ya - EPS or v > self.yb + EPS or u >= v:
            raise EnvelopeError(
                f"clip [{u}, {v}] outside piece [{self.ya}, {self.yb}]"
            )
        u = max(u, self.ya)
        v = min(v, self.yb)
        return Piece(u, self.z_at(u), v, self.z_at(v), self.source)

    def as_segment(self) -> ImageSegment:
        return ImageSegment(self.ya, self.za, self.yb, self.zb, self.source)

    def vertices(self) -> tuple[Point2, Point2]:
        """Both endpoints as image-plane points ``(y, z)``."""
        return Point2(self.ya, self.za), Point2(self.yb, self.zb)


class Envelope:
    """A monotone piecewise-linear upper profile.

    Invariants (checked by :meth:`validate`):

    * pieces sorted by ``ya``; ``ya < yb`` within each piece;
    * consecutive pieces do not overlap: ``pieces[i].yb <= pieces[i+1].ya``
      (equality means the profile is contiguous there; strict
      inequality is a gap where the profile is ``-inf``).
    """

    __slots__ = ("pieces", "_starts")

    def __init__(self, pieces: Sequence[Piece] = ()):
        self.pieces: list[Piece] = list(pieces)
        # Cached piece start ordinates for binary search.
        self._starts: list[float] = [p.ya for p in self.pieces]

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "Envelope":
        """The envelope of the empty segment set (``-inf`` everywhere)."""
        return Envelope(())

    @staticmethod
    def from_segment(seg: ImageSegment) -> "Envelope":
        """Envelope of a single segment.

        Vertical segments have an empty envelope (their image is a
        single ``y`` — measure zero; their own visibility is handled by
        point queries in :mod:`repro.envelope.visibility`).
        """
        if seg.is_vertical:
            return Envelope.empty()
        return Envelope(
            (Piece(seg.y1, seg.z1, seg.y2, seg.z2, seg.source),)
        )

    @staticmethod
    def from_pieces(pieces: Iterable[Piece]) -> "Envelope":
        env = Envelope(tuple(pieces))
        env.validate()
        return env

    # -- basic queries ------------------------------------------------

    def __len__(self) -> int:
        return len(self.pieces)

    def __iter__(self) -> Iterator[Piece]:
        return iter(self.pieces)

    def __bool__(self) -> bool:
        return bool(self.pieces)

    @property
    def size(self) -> int:
        """Number of linear pieces (the profile's combinatorial size)."""
        return len(self.pieces)

    def y_span(self) -> tuple[float, float]:
        """Smallest interval containing the profile's support.

        Raises :class:`EnvelopeError` when empty.
        """
        if not self.pieces:
            raise EnvelopeError("y_span of empty envelope")
        return self.pieces[0].ya, self.pieces[-1].yb

    def value_at(self, y: float) -> float:
        """Profile height at ``y``; ``-inf`` in gaps.

        At a breakpoint shared by two pieces the value is the max of
        the two one-sided limits (upper semi-continuity — the correct
        convention for an upper envelope of closed segments).
        """
        if not self.pieces:
            return NEG_INF
        i = bisect.bisect_right(self._starts, y) - 1
        best = NEG_INF
        if i >= 0:
            p = self.pieces[i]
            if p.ya <= y <= p.yb:
                best = p.z_at(y)
            # The previous piece may end exactly at y (a breakpoint
            # where two pieces meet, possibly with a jump).
            if i >= 1 and self.pieces[i - 1].yb == y:
                v = self.pieces[i - 1].zb
                if v > best:
                    best = v
        # The next piece may start exactly at y.
        if i + 1 < len(self.pieces) and self.pieces[i + 1].ya == y:
            v = self.pieces[i + 1].za
            if v > best:
                best = v
        return best

    def piece_index_covering(self, y: float) -> Optional[int]:
        """Index of a piece whose closed range contains ``y`` (the
        left-most such piece), or ``None`` in a gap."""
        if not self.pieces:
            return None
        i = bisect.bisect_right(self._starts, y) - 1
        if i >= 1 and self.pieces[i - 1].yb == y:
            return i - 1
        if i >= 0 and self.pieces[i].ya <= y <= self.pieces[i].yb:
            return i
        if i + 1 < len(self.pieces) and self.pieces[i + 1].ya == y:
            return i + 1
        return None

    def pieces_overlapping(self, ya: float, yb: float) -> tuple[int, int]:
        """Half-open index range ``[lo, hi)`` of pieces whose interior
        overlaps ``(ya, yb)``."""
        if not self.pieces or ya >= yb:
            return (0, 0)
        lo = bisect.bisect_right(self._starts, ya) - 1
        if lo < 0 or self.pieces[lo].yb <= ya:
            lo += 1
        hi = bisect.bisect_left(self._starts, yb)
        return (lo, hi)

    def vertices(self) -> list[Point2]:
        """All piece endpoints in y-order (duplicates at contiguous
        joins removed when the values agree exactly)."""
        out: list[Point2] = []
        for p in self.pieces:
            a, b = p.vertices()
            if not out or out[-1] != a:
                out.append(a)
            out.append(b)
        return out

    def sources(self) -> set[int]:
        """Set of terrain-edge ids contributing at least one piece."""
        return {p.source for p in self.pieces}

    def total_length(self) -> float:
        """Total arc length of the profile (diagnostics)."""
        return sum(p.as_segment().length() for p in self.pieces)

    # -- integrity ----------------------------------------------------

    def validate(self, eps: float = 0.0) -> None:
        """Raise :class:`EnvelopeError` when invariants are violated."""
        prev_end = None
        for idx, p in enumerate(self.pieces):
            if not (p.ya < p.yb):
                raise EnvelopeError(f"piece {idx} has empty span: {p}")
            if prev_end is not None and p.ya < prev_end - eps:
                raise EnvelopeError(
                    f"piece {idx} overlaps previous (starts {p.ya} <"
                    f" previous end {prev_end})"
                )
            prev_end = p.yb

    # -- comparison helpers (used heavily by tests) --------------------

    def approx_equal(
        self, other: "Envelope", *, samples: int = 257, eps: float = 1e-6
    ) -> bool:
        """Numerically compare two envelopes on a dense common grid.

        Compares ``value_at`` at every breakpoint of either envelope,
        at midpoints between consecutive breakpoints, and on a uniform
        grid of ``samples`` points over the union span.  ``-inf`` must
        match exactly.
        """
        ys: set[float] = set()
        for env in (self, other):
            for p in env.pieces:
                ys.add(p.ya)
                ys.add(p.yb)
        if not ys:
            return not self.pieces and not other.pieces
        lo, hi = min(ys), max(ys)
        if samples > 1 and hi > lo:
            step = (hi - lo) / (samples - 1)
            ys.update(lo + i * step for i in range(samples))
        sorted_ys = sorted(ys)
        for u, v in zip(sorted_ys, sorted_ys[1:]):
            ys.add(0.5 * (u + v))
        for y in ys:
            a = self.value_at(y)
            b = other.value_at(y)
            if a == NEG_INF or b == NEG_INF:
                # Tolerate -inf vs finite mismatches only within eps of
                # a support boundary, where one-sided conventions may
                # legitimately differ.
                if a != b and not self._near_boundary(y, other, eps):
                    return False
                continue
            if abs(a - b) > eps:
                return False
        return True

    def _near_boundary(self, y: float, other: "Envelope", eps: float) -> bool:
        for env in (self, other):
            for p in env.pieces:
                if abs(p.ya - y) <= eps or abs(p.yb - y) <= eps:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.pieces:
            return "Envelope(empty)"
        lo, hi = self.y_span()
        return (
            f"Envelope({len(self.pieces)} pieces over"
            f" [{lo:.4g}, {hi:.4g}])"
        )


class EnvelopeBuilder:
    """Accumulates pieces left-to-right, coalescing contiguous pieces
    that come from the same source segment (same supporting line).

    Used by the merge sweep so that splitting a piece at envelope
    breakpoints of the *other* envelope does not inflate the output
    size — without coalescing, merged envelope sizes would grow with
    the number of elementary intervals instead of the number of true
    profile vertices.
    """

    __slots__ = ("_pieces", "eps", "_last_slope")

    def __init__(self, eps: float = EPS):
        self._pieces: list[Piece] = []
        self.eps = eps
        # Slope of the current last piece, when already known.  Merge
        # sweeps repeatedly clip the same synthetic (source -1) piece
        # into adjacent sub-pieces; caching avoids re-deriving the
        # slope of the accumulated piece on every ``add``.
        self._last_slope: Optional[float] = None

    def add(self, piece: Piece) -> None:
        if piece.ya >= piece.yb:
            return
        if self._pieces:
            last = self._pieces[-1]
            if (
                last.source == piece.source
                and last.yb == piece.ya
                and abs(last.zb - piece.za) <= self.eps
            ):
                if last.source >= 0:
                    self._pieces[-1] = Piece(
                        last.ya, last.za, piece.yb, piece.zb, last.source
                    )
                    self._last_slope = None
                    return
                piece_slope = piece.slope
                last_slope = self._last_slope
                if last_slope is None:
                    last_slope = last.slope
                if abs(last_slope - piece_slope) <= self.eps:
                    self._pieces[-1] = Piece(
                        last.ya, last.za, piece.yb, piece.zb, last.source
                    )
                    self._last_slope = None
                    return
                self._pieces.append(piece)
                self._last_slope = piece_slope
                return
        self._pieces.append(piece)
        self._last_slope = None

    def add_clipped(self, piece: Piece, u: float, v: float) -> None:
        """Add the restriction of ``piece`` to ``[u, v]``."""
        if u < v:
            self.add(piece.clipped(u, v))

    def build(self) -> Envelope:
        return Envelope(self._pieces)
