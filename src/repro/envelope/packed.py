"""Packed single-buffer profile: in-place splices for the flat stack.

:class:`~repro.envelope.flat_splice.FlatProfile` removed the Θ(m)
tuple churn of the scalar sequential path, but every insert still pays
a five-field ``np.concatenate`` splice — five fresh allocations and a
full head+window+tail copy (~4µs fixed cost on this box) — plus a
locate over the freshly reallocated arrays.  On the Python-loop-bound
small-window regime (the E9 family at small ``m``) that fixed cost is
the largest single per-insert term left.

:class:`PackedProfile` keeps the live profile in **one** contiguous
``(5, capacity)`` float64 allocation — the five field columns
``ya/za/yb/zb/source`` are row views into it, and ``source`` is the
same bytes reinterpreted as int64 (both are 8-byte lanes, so one
buffer serves all five fields).  The live pieces occupy a window
``[beg, end)`` of the capacity with **slack at both ends**, so a
splice is:

* *no size change* — an in-place window write, zero moves;
* *size change* — **one** ``memmove``-style 2D slice shift of the
  cheaper of head/tail into its slack (all five fields move in a
  single int64 assignment, bit-exact for float lanes), then the
  window write;
* *slack exhausted* — an amortized-doubling reallocation
  (``capacity = 2 × need``) that re-centres the live window, charged
  O(1) per insert in aggregate.

Locates (:meth:`FlatEnvelope.pieces_overlapping`) read ``searchsorted``
directly off the live ``ya`` row view — no reallocation has happened
since the views were last derived, because *only* :meth:`splice`
moves the buffer and it re-derives them.

Mutability contract
-------------------

Unlike its base classes, ``PackedProfile`` is **mutable**:
:meth:`splice` edits the buffer in place and returns ``self``.  Zero-
copy window views taken *before* a splice may point at a stale buffer
(after a reallocation) or at shifted contents (after a slice move)
— consumers must re-derive windows from the live profile after every
insert and never read a pre-splice view afterwards.
``repro.envelope.flat_splice.insert_segment_flat`` observes this by
construction (all window reads happen before the single splice at the
end of each insert); ``tests/test_envelope_packed.py`` pins the
contract with stale-view regression tests.

``ops`` accounting is unaffected by the layout: the reported ``ops``
are elementary-interval counts (engine- and layout-independent by
construction), so a ``PackedProfile`` run is bit-exact — visibility
map, ``ops``, ``max_profile_size``, profile pieces — against
``engine="python"``.  The *moved-element* cost of shifts and
reallocations is a wall-clock-only implementation detail of the
layout, exactly like the concatenate copies it replaces; in Phase 2's
``direct`` mode the per-merge copy into a fresh packed buffer is what
``pieces_materialised`` has always reported (the copied piece count),
so the E5/E11 sharing-vs-copying semantics are unchanged.

Ship gate: :data:`repro.envelope.engine.USE_PACKED_PROFILE` selects
this layout for ``SequentialHSR(engine="numpy")`` and the Phase-2
direct-flat accumulation; the ``sequential-packed-ablation`` bench
rows keep the PR-4 ``FlatProfile`` cascade measurable.
"""

from __future__ import annotations

import numpy as np

from repro.envelope.chain import Envelope
from repro.envelope.flat import FlatEnvelope
from repro.envelope.flat_splice import FlatProfile
from repro.errors import KernelFault
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = ["PackedProfile", "MIN_CAPACITY"]

_F = np.float64
_I = np.int64

#: Smallest buffer a :class:`PackedProfile` allocates — covers the
#: first handful of inserts of a run without a growth step.
MIN_CAPACITY = 16


class PackedProfile(FlatProfile):
    """A live profile in one packed buffer; splices mutate in place.

    Same query surface as :class:`FlatProfile` (the five field
    attributes are live row views into the buffer), but
    :meth:`splice` **mutates** the receiver and returns it — see the
    module docstring for the view-staleness contract.

    >>> prof = PackedProfile.empty()
    >>> prof.splice(0, 0, [0.0], [1.0], [2.0], [1.0], [7]) is prof
    True
    >>> _ = prof.splice(1, 1, [2.0], [4.0], [5.0], [4.0], [9])
    >>> prof.size, [p.source for p in prof.to_envelope().pieces]
    (2, [7, 9])
    """

    __slots__ = ("_buf", "_ibuf", "_beg", "_end")

    def __init__(self, buf: np.ndarray, ibuf: np.ndarray, beg: int, end: int):
        self._buf = buf
        self._ibuf = ibuf
        self._beg = beg
        self._end = end
        self._sync_views()

    def _sync_views(self) -> None:
        """Re-derive the five live field views after a buffer edit."""
        buf, beg, end = self._buf, self._beg, self._end
        self.ya = buf[0, beg:end]
        self.za = buf[1, beg:end]
        self.yb = buf[2, beg:end]
        self.zb = buf[3, beg:end]
        self.source = self._ibuf[4, beg:end]

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty(capacity: int = MIN_CAPACITY) -> "PackedProfile":
        capacity = max(2, int(capacity))
        buf = np.empty((5, capacity), _F)
        beg = capacity // 2
        return PackedProfile(buf, buf.view(_I), beg, beg)

    @classmethod
    def pack(cls, flat: FlatEnvelope) -> "PackedProfile":
        """A packed copy of any flat envelope, with fresh slack."""
        n = len(flat)
        cap = max(MIN_CAPACITY, 2 * n)
        buf = np.empty((5, cap), _F)
        ibuf = buf.view(_I)
        beg = (cap - n) // 2
        end = beg + n
        buf[0, beg:end] = flat.ya
        buf[1, beg:end] = flat.za
        buf[2, beg:end] = flat.yb
        buf[3, beg:end] = flat.zb
        ibuf[4, beg:end] = flat.source
        return cls(buf, ibuf, beg, end)

    @staticmethod
    def from_envelope(env: Envelope) -> "PackedProfile":
        return PackedProfile.pack(FlatEnvelope.from_pieces(env.pieces))

    @classmethod
    def from_splice(
        cls,
        parent: FlatEnvelope,
        lo: int,
        hi: int,
        ya,
        za,
        yb,
        zb,
        source,
    ) -> "PackedProfile":
        """A *new* packed profile equal to ``parent`` with pieces
        ``[lo, hi)`` replaced — the Phase-2 accumulation constructor.

        The parent is only read (Phase-2 left children keep sharing
        it), and the copy is one buffer allocation plus three segment
        writes instead of five per-field concatenates.  The number of
        elements moved is exactly the result size — the quantity
        Phase 2 reports as ``pieces_materialised``.
        """
        k = len(ya)
        head = lo
        n = len(parent)
        tail = n - hi
        need = head + k + tail
        cap = max(MIN_CAPACITY, need)
        buf = np.empty((5, cap), _F)
        ibuf = buf.view(_I)
        beg = (cap - need) // 2
        a = beg + head
        b = a + k
        end = beg + need
        if head:
            if isinstance(parent, PackedProfile):
                p = parent._beg
                ibuf[:, beg:a] = parent._ibuf[:, p : p + head]
            else:
                buf[0, beg:a] = parent.ya[:head]
                buf[1, beg:a] = parent.za[:head]
                buf[2, beg:a] = parent.yb[:head]
                buf[3, beg:a] = parent.zb[:head]
                ibuf[4, beg:a] = parent.source[:head]
        if tail:
            if isinstance(parent, PackedProfile):
                p = parent._beg + hi
                ibuf[:, b:end] = parent._ibuf[:, p : p + tail]
            else:
                buf[0, b:end] = parent.ya[hi:]
                buf[1, b:end] = parent.za[hi:]
                buf[2, b:end] = parent.yb[hi:]
                buf[3, b:end] = parent.zb[hi:]
                ibuf[4, b:end] = parent.source[hi:]
        if k:
            buf[0, a:b] = ya
            buf[1, a:b] = za
            buf[2, a:b] = yb
            buf[3, a:b] = zb
            ibuf[4, a:b] = source
        return cls(buf, ibuf, beg, end)

    # -- capacity introspection (tests / diagnostics) -----------------

    @property
    def capacity(self) -> int:
        return self._buf.shape[1]

    @property
    def slack(self) -> tuple[int, int]:
        """``(head_slack, tail_slack)`` free lanes on each side."""
        return (self._beg, self._buf.shape[1] - self._end)

    # -- the in-place splice ------------------------------------------

    def splice(self, lo: int, hi: int, ya, za, yb, zb, source) -> "PackedProfile":
        """Replace live pieces ``[lo, hi)`` with the given fields,
        **in place**, and return ``self``.

        At most one side of the profile moves — the cheaper of head
        and tail, by one 2D slice shift over the int64 bit view (all
        five fields in one assignment, bit-exact for the float lanes)
        — and only when the replacement changes the piece count.
        Growth reallocates with amortized doubling.  All views
        previously derived from this profile are stale afterwards.

        Guard site ``packed_splice``: a bounds violation escalates as
        an :class:`~repro.reliability.guard.InvariantViolation` (the
        caller's window is wrong — re-splicing cannot help, the
        insert-level guard must recompute it); any other fault is
        recorded and the splice retried through the read-only
        :meth:`from_splice` rebuild, which works off buffer truth.
        """
        if not _guard.GUARDS_ENABLED:
            return self._splice_impl(lo, hi, ya, za, yb, zb, source)
        n = self._end - self._beg
        if not (0 <= lo <= hi <= n):
            _guard.violation(
                "packed_splice",
                f"splice range [{lo}, {hi}) outside live range [0, {n})",
            )
        if _guard.ANY_QUARANTINED and _guard.is_quarantined("packed_splice"):
            with _fi.suppressed():
                return self._rebuild_splice(lo, hi, ya, za, yb, zb, source)
        try:
            if _fi.ARMED:
                _fi.trip("packed_splice")
            return self._splice_impl(lo, hi, ya, za, yb, zb, source)
        except KernelFault:
            raise
        except Exception as exc:
            _guard.handle_fault("packed_splice", exc)
            with _fi.suppressed():
                return self._rebuild_splice(lo, hi, ya, za, yb, zb, source)

    def _rebuild_splice(
        self, lo: int, hi: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        """Recovery path of :meth:`splice`: rebuild the whole buffer
        through the parent-read-only :meth:`from_splice` constructor
        and adopt its storage, preserving object identity.  Views are
        re-derived from buffer truth first, so a fault that left them
        stale cannot corrupt the rebuild."""
        self._sync_views()
        fresh = PackedProfile.from_splice(self, lo, hi, ya, za, yb, zb, source)
        self._buf = fresh._buf
        self._ibuf = fresh._ibuf
        self._beg = fresh._beg
        self._end = fresh._end
        self._sync_views()
        return self

    def _splice_impl(
        self, lo: int, hi: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        k = len(ya)
        beg, end = self._beg, self._end
        n = end - beg
        d = k - (hi - lo)
        buf, ibuf = self._buf, self._ibuf
        if d:
            head = lo
            tail = n - hi
            if d < 0:
                # Shrink: shift the smaller side inward (always fits).
                if head <= tail:
                    if head:
                        ibuf[:, beg - d : beg - d + head] = ibuf[:, beg : beg + head]
                    beg -= d
                    self._beg = beg
                else:
                    if tail:
                        ibuf[:, beg + lo + k : end + d] = ibuf[:, beg + hi : end]
                    self._end = end + d
            else:
                # Grow: prefer the cheaper side whose slack fits.
                fits_head = beg >= d
                fits_tail = buf.shape[1] - end >= d
                if fits_head and (head <= tail or not fits_tail):
                    if head:
                        ibuf[:, beg - d : beg - d + head] = ibuf[:, beg : beg + head]
                    beg -= d
                    self._beg = beg
                elif fits_tail:
                    if tail:
                        ibuf[:, beg + lo + k : end + d] = ibuf[:, beg + hi : end]
                    self._end = end + d
                else:
                    return self._grow_splice(lo, hi, k, ya, za, yb, zb, source)
        a = beg + lo
        if k <= 2 and type(ya) is list:
            # Scalar stores: a handful of item writes beats five
            # list→array slice conversions on 1–2-piece windows (the
            # common merged-window size in the small-insert regime).
            for i in range(k):
                c = a + i
                buf[0, c] = ya[i]
                buf[1, c] = za[i]
                buf[2, c] = yb[i]
                buf[3, c] = zb[i]
                ibuf[4, c] = source[i]
        elif k:
            b = a + k
            buf[0, a:b] = ya
            buf[1, a:b] = za
            buf[2, a:b] = yb
            buf[3, a:b] = zb
            ibuf[4, a:b] = source
        if d:
            self._sync_views()
        return self

    def _grow_splice(
        self, lo: int, hi: int, k: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        """Amortized-doubling reallocation path of :meth:`splice`."""
        beg, end = self._beg, self._end
        n = end - beg
        head = lo
        tail = n - hi
        need = head + k + tail
        cap = max(MIN_CAPACITY, 2 * need)
        new = np.empty((5, cap), _F)
        nibuf = new.view(_I)
        nbeg = (cap - need) // 2
        a = nbeg + head
        b = a + k
        nend = nbeg + need
        if head:
            nibuf[:, nbeg:a] = self._ibuf[:, beg : beg + head]
        if tail:
            nibuf[:, b:nend] = self._ibuf[:, beg + hi : end]
        if k:
            new[0, a:b] = ya
            new[1, a:b] = za
            new[2, a:b] = yb
            new[3, a:b] = zb
            nibuf[4, a:b] = source
        self._buf = new
        self._ibuf = nibuf
        self._beg = nbeg
        self._end = nend
        self._sync_views()
        return self

    # -- packed-layout fast queries -----------------------------------

    def window_lists(self, lo: int, hi: int) -> tuple[list, list, list, list]:
        """One 2D ``tolist`` off the buffer instead of four per-field
        slice+``tolist`` round trips (the scalar fused loop's feed)."""
        a = self._beg + lo
        rows = self._buf[:4, a : self._beg + hi].tolist()
        return rows[0], rows[1], rows[2], rows[3]

    def window_z_min(self, lo: int, hi: int) -> float:
        """min over both z columns of pieces ``[lo, hi)`` — a single
        strided 2D reduction over the packed z rows."""
        a = self._beg + lo
        return self._buf[1:4:2, a : self._beg + hi].min()

    def window_z_max(self, lo: int, hi: int) -> float:
        a = self._beg + lo
        return self._buf[1:4:2, a : self._beg + hi].max()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PackedProfile({self.size} pieces, capacity"
            f" {self.capacity}, slack {self.slack})"
        )
