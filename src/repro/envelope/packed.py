"""Packed single-buffer profile: in-place splices for the flat stack.

:class:`~repro.envelope.flat_splice.FlatProfile` removed the Θ(m)
tuple churn of the scalar sequential path, but every insert still pays
a five-field ``np.concatenate`` splice — five fresh allocations and a
full head+window+tail copy (~4µs fixed cost on this box) — plus a
locate over the freshly reallocated arrays.  On the Python-loop-bound
small-window regime (the E9 family at small ``m``) that fixed cost is
the largest single per-insert term left.

:class:`PackedProfile` keeps the live profile in **one** contiguous
``(5, capacity)`` float64 allocation — the five field columns
``ya/za/yb/zb/source`` are row views into it, and ``source`` is the
same bytes reinterpreted as int64 (both are 8-byte lanes, so one
buffer serves all five fields).  The live pieces occupy a window
``[beg, end)`` of the capacity with **slack at both ends**, so a
splice is:

* *no size change* — an in-place window write, zero moves;
* *size change* — **one** ``memmove``-style 2D slice shift of the
  cheaper of head/tail into its slack (all five fields move in a
  single int64 assignment, bit-exact for float lanes), then the
  window write;
* *slack exhausted* — an amortized-doubling reallocation
  (``capacity = 2 × need``) that re-centres the live window, charged
  O(1) per insert in aggregate.

Locates (:meth:`FlatEnvelope.pieces_overlapping`) read ``searchsorted``
directly off the live ``ya`` row view — no reallocation has happened
since the views were last derived, because *only* :meth:`splice`
moves the buffer and it re-derives them.

Mutability contract
-------------------

Unlike its base classes, ``PackedProfile`` is **mutable**:
:meth:`splice` edits the buffer in place and returns ``self``.  Zero-
copy window views taken *before* a splice may point at a stale buffer
(after a reallocation) or at shifted contents (after a slice move)
— consumers must re-derive windows from the live profile after every
insert and never read a pre-splice view afterwards.
``repro.envelope.flat_splice.insert_segment_flat`` observes this by
construction (all window reads happen before the single splice at the
end of each insert); ``tests/test_envelope_packed.py`` pins the
contract with stale-view regression tests.

``ops`` accounting is unaffected by the layout: the reported ``ops``
are elementary-interval counts (engine- and layout-independent by
construction), so a ``PackedProfile`` run is bit-exact — visibility
map, ``ops``, ``max_profile_size``, profile pieces — against
``engine="python"``.  The *moved-element* cost of shifts and
reallocations is a wall-clock-only implementation detail of the
layout, exactly like the concatenate copies it replaces; in Phase 2's
``direct`` mode the per-merge copy into a fresh packed buffer is what
``pieces_materialised`` has always reported (the copied piece count),
so the E5/E11 sharing-vs-copying semantics are unchanged.

Ship gate: :data:`repro.envelope.engine.USE_PACKED_PROFILE` selects
this layout for ``SequentialHSR(engine="numpy")`` and the Phase-2
direct-flat accumulation; the ``sequential-packed-ablation`` bench
rows keep the PR-4 ``FlatProfile`` cascade measurable.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from repro.envelope.chain import Envelope, Piece
from repro.envelope.flat import FlatEnvelope
from repro.envelope.flat_splice import FlatProfile, _line_z
from repro.errors import KernelFault
from repro.geometry.primitives import NEG_INF
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "PackedProfile",
    "ChunkedProfile",
    "MIN_CAPACITY",
    "CHUNK_PIECES",
]

_F = np.float64
_I = np.int64

#: Smallest buffer a :class:`PackedProfile` allocates — covers the
#: first handful of inserts of a run without a growth step.
MIN_CAPACITY = 16

#: Target pieces per :class:`ChunkedProfile` chunk — the same frozen
#: ``(5, k)`` SoA block shape the persistent rope uses
#: (:data:`repro.persistence.rope.CHUNK_TARGET`), sized up for the
#: live profile where per-chunk Python overhead, not sharing
#: granularity, sets the optimum (512 measured best of 128-1024 on
#: the wide-strip family at m=8192).  A chunk splits at twice this.
CHUNK_PIECES = 512


class PackedProfile(FlatProfile):
    """A live profile in one packed buffer; splices mutate in place.

    Same query surface as :class:`FlatProfile` (the five field
    attributes are live row views into the buffer), but
    :meth:`splice` **mutates** the receiver and returns it — see the
    module docstring for the view-staleness contract.

    The compiled insert core (:mod:`repro.envelope._ccore`) borrows
    ``_buf`` as a raw pointer for the duration of one call: it may
    shift ``[_beg, _end)`` within the existing allocation (then the
    wrapper re-syncs the views) but never reallocates — growth always
    comes back through :meth:`splice`, so this class stays the sole
    owner of the buffer's lifetime.

    >>> prof = PackedProfile.empty()
    >>> prof.splice(0, 0, [0.0], [1.0], [2.0], [1.0], [7]) is prof
    True
    >>> _ = prof.splice(1, 1, [2.0], [4.0], [5.0], [4.0], [9])
    >>> prof.size, [p.source for p in prof.to_envelope().pieces]
    (2, [7, 9])
    """

    __slots__ = ("_buf", "_ibuf", "_beg", "_end")

    def __init__(self, buf: np.ndarray, ibuf: np.ndarray, beg: int, end: int):
        self._buf = buf
        self._ibuf = ibuf
        self._beg = beg
        self._end = end
        self._sync_views()

    def _sync_views(self) -> None:
        """Re-derive the five live field views after a buffer edit."""
        buf, beg, end = self._buf, self._beg, self._end
        self.ya = buf[0, beg:end]
        self.za = buf[1, beg:end]
        self.yb = buf[2, beg:end]
        self.zb = buf[3, beg:end]
        self.source = self._ibuf[4, beg:end]

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty(capacity: int = MIN_CAPACITY) -> "PackedProfile":
        capacity = max(2, int(capacity))
        buf = np.empty((5, capacity), _F)
        beg = capacity // 2
        return PackedProfile(buf, buf.view(_I), beg, beg)

    @classmethod
    def pack(cls, flat: FlatEnvelope) -> "PackedProfile":
        """A packed copy of any flat envelope, with fresh slack."""
        n = len(flat)
        cap = max(MIN_CAPACITY, 2 * n)
        buf = np.empty((5, cap), _F)
        ibuf = buf.view(_I)
        beg = (cap - n) // 2
        end = beg + n
        buf[0, beg:end] = flat.ya
        buf[1, beg:end] = flat.za
        buf[2, beg:end] = flat.yb
        buf[3, beg:end] = flat.zb
        ibuf[4, beg:end] = flat.source
        return cls(buf, ibuf, beg, end)

    @staticmethod
    def from_envelope(env: Envelope) -> "PackedProfile":
        return PackedProfile.pack(FlatEnvelope.from_pieces(env.pieces))

    @classmethod
    def from_splice(
        cls,
        parent: FlatEnvelope,
        lo: int,
        hi: int,
        ya,
        za,
        yb,
        zb,
        source,
    ) -> "PackedProfile":
        """A *new* packed profile equal to ``parent`` with pieces
        ``[lo, hi)`` replaced — the Phase-2 accumulation constructor.

        The parent is only read (Phase-2 left children keep sharing
        it), and the copy is one buffer allocation plus three segment
        writes instead of five per-field concatenates.  The number of
        elements moved is exactly the result size — the quantity
        Phase 2 reports as ``pieces_materialised``.
        """
        k = len(ya)
        head = lo
        n = len(parent)
        tail = n - hi
        need = head + k + tail
        cap = max(MIN_CAPACITY, need)
        buf = np.empty((5, cap), _F)
        ibuf = buf.view(_I)
        beg = (cap - need) // 2
        a = beg + head
        b = a + k
        end = beg + need
        if head:
            if isinstance(parent, PackedProfile):
                p = parent._beg
                ibuf[:, beg:a] = parent._ibuf[:, p : p + head]
            else:
                buf[0, beg:a] = parent.ya[:head]
                buf[1, beg:a] = parent.za[:head]
                buf[2, beg:a] = parent.yb[:head]
                buf[3, beg:a] = parent.zb[:head]
                ibuf[4, beg:a] = parent.source[:head]
        if tail:
            if isinstance(parent, PackedProfile):
                p = parent._beg + hi
                ibuf[:, b:end] = parent._ibuf[:, p : p + tail]
            else:
                buf[0, b:end] = parent.ya[hi:]
                buf[1, b:end] = parent.za[hi:]
                buf[2, b:end] = parent.yb[hi:]
                buf[3, b:end] = parent.zb[hi:]
                ibuf[4, b:end] = parent.source[hi:]
        if k:
            buf[0, a:b] = ya
            buf[1, a:b] = za
            buf[2, a:b] = yb
            buf[3, a:b] = zb
            ibuf[4, a:b] = source
        return cls(buf, ibuf, beg, end)

    # -- capacity introspection (tests / diagnostics) -----------------

    @property
    def capacity(self) -> int:
        return self._buf.shape[1]

    @property
    def slack(self) -> tuple[int, int]:
        """``(head_slack, tail_slack)`` free lanes on each side."""
        return (self._beg, self._buf.shape[1] - self._end)

    # -- the in-place splice ------------------------------------------

    def splice(self, lo: int, hi: int, ya, za, yb, zb, source) -> "PackedProfile":
        """Replace live pieces ``[lo, hi)`` with the given fields,
        **in place**, and return ``self``.

        At most one side of the profile moves — the cheaper of head
        and tail, by one 2D slice shift over the int64 bit view (all
        five fields in one assignment, bit-exact for the float lanes)
        — and only when the replacement changes the piece count.
        Growth reallocates with amortized doubling.  All views
        previously derived from this profile are stale afterwards.

        Guard site ``packed_splice``: a bounds violation escalates as
        an :class:`~repro.reliability.guard.InvariantViolation` (the
        caller's window is wrong — re-splicing cannot help, the
        insert-level guard must recompute it); any other fault is
        recorded and the splice retried through the read-only
        :meth:`from_splice` rebuild, which works off buffer truth.
        """
        if not _guard.GUARDS_ENABLED:
            return self._splice_impl(lo, hi, ya, za, yb, zb, source)
        n = self._end - self._beg
        if not (0 <= lo <= hi <= n):
            _guard.violation(
                "packed_splice",
                f"splice range [{lo}, {hi}) outside live range [0, {n})",
            )
        if _guard.ANY_QUARANTINED and _guard.is_quarantined("packed_splice"):
            with _fi.suppressed():
                return self._rebuild_splice(lo, hi, ya, za, yb, zb, source)
        try:
            if _fi.ARMED:
                _fi.trip("packed_splice")
            return self._splice_impl(lo, hi, ya, za, yb, zb, source)
        except KernelFault:
            raise
        except Exception as exc:
            _guard.handle_fault("packed_splice", exc)
            with _fi.suppressed():
                return self._rebuild_splice(lo, hi, ya, za, yb, zb, source)

    def _rebuild_splice(
        self, lo: int, hi: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        """Recovery path of :meth:`splice`: rebuild the whole buffer
        through the parent-read-only :meth:`from_splice` constructor
        and adopt its storage, preserving object identity.  Views are
        re-derived from buffer truth first, so a fault that left them
        stale cannot corrupt the rebuild."""
        self._sync_views()
        fresh = PackedProfile.from_splice(self, lo, hi, ya, za, yb, zb, source)
        self._buf = fresh._buf
        self._ibuf = fresh._ibuf
        self._beg = fresh._beg
        self._end = fresh._end
        self._sync_views()
        return self

    def _splice_impl(
        self, lo: int, hi: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        k = len(ya)
        beg, end = self._beg, self._end
        n = end - beg
        d = k - (hi - lo)
        buf, ibuf = self._buf, self._ibuf
        if d:
            head = lo
            tail = n - hi
            if d < 0:
                # Shrink: shift the smaller side inward (always fits).
                if head <= tail:
                    if head:
                        ibuf[:, beg - d : beg - d + head] = ibuf[:, beg : beg + head]
                    beg -= d
                    self._beg = beg
                else:
                    if tail:
                        ibuf[:, beg + lo + k : end + d] = ibuf[:, beg + hi : end]
                    self._end = end + d
            else:
                # Grow: prefer the cheaper side whose slack fits.
                fits_head = beg >= d
                fits_tail = buf.shape[1] - end >= d
                if fits_head and (head <= tail or not fits_tail):
                    if head:
                        ibuf[:, beg - d : beg - d + head] = ibuf[:, beg : beg + head]
                    beg -= d
                    self._beg = beg
                elif fits_tail:
                    if tail:
                        ibuf[:, beg + lo + k : end + d] = ibuf[:, beg + hi : end]
                    self._end = end + d
                else:
                    return self._grow_splice(lo, hi, k, ya, za, yb, zb, source)
        a = beg + lo
        if k <= 2 and type(ya) is list:
            # Scalar stores: a handful of item writes beats five
            # list→array slice conversions on 1–2-piece windows (the
            # common merged-window size in the small-insert regime).
            for i in range(k):
                c = a + i
                buf[0, c] = ya[i]
                buf[1, c] = za[i]
                buf[2, c] = yb[i]
                buf[3, c] = zb[i]
                ibuf[4, c] = source[i]
        elif k:
            b = a + k
            buf[0, a:b] = ya
            buf[1, a:b] = za
            buf[2, a:b] = yb
            buf[3, a:b] = zb
            ibuf[4, a:b] = source
        if d:
            self._sync_views()
        return self

    def _grow_splice(
        self, lo: int, hi: int, k: int, ya, za, yb, zb, source
    ) -> "PackedProfile":
        """Amortized-doubling reallocation path of :meth:`splice`."""
        beg, end = self._beg, self._end
        n = end - beg
        head = lo
        tail = n - hi
        need = head + k + tail
        cap = max(MIN_CAPACITY, 2 * need)
        new = np.empty((5, cap), _F)
        nibuf = new.view(_I)
        nbeg = (cap - need) // 2
        a = nbeg + head
        b = a + k
        nend = nbeg + need
        if head:
            nibuf[:, nbeg:a] = self._ibuf[:, beg : beg + head]
        if tail:
            nibuf[:, b:nend] = self._ibuf[:, beg + hi : end]
        if k:
            new[0, a:b] = ya
            new[1, a:b] = za
            new[2, a:b] = yb
            new[3, a:b] = zb
            nibuf[4, a:b] = source
        self._buf = new
        self._ibuf = nibuf
        self._beg = nbeg
        self._end = nend
        self._sync_views()
        return self

    # -- packed-layout fast queries -----------------------------------

    def window_lists(self, lo: int, hi: int) -> tuple[list, list, list, list]:
        """One 2D ``tolist`` off the buffer instead of four per-field
        slice+``tolist`` round trips (the scalar fused loop's feed)."""
        a = self._beg + lo
        rows = self._buf[:4, a : self._beg + hi].tolist()
        return rows[0], rows[1], rows[2], rows[3]

    def window_z_min(self, lo: int, hi: int) -> float:
        """min over both z columns of pieces ``[lo, hi)`` — a single
        strided 2D reduction over the packed z rows."""
        a = self._beg + lo
        return self._buf[1:4:2, a : self._beg + hi].min()

    def window_z_max(self, lo: int, hi: int) -> float:
        a = self._beg + lo
        return self._buf[1:4:2, a : self._beg + hi].max()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PackedProfile({self.size} pieces, capacity"
            f" {self.capacity}, slack {self.slack})"
        )


class _ChunkLane:
    """Read/write lane facade over a :class:`ChunkedProfile`.

    Serves the raw-lane accesses the insert cascade performs
    (``profile.ya[lo]``, ``profile.source[lo:hi].tolist()``, the
    periodic ``check_profile`` tick, ``poison_profile`` writes)
    without ever materialising the full lane: integer indexing is a
    two-level lookup, slicing gathers only the requested span, and
    whole-lane consumers (``np.isfinite``, lane comparisons) go
    through ``__array__``.
    """

    __slots__ = ("_prof", "_row")

    _ATTRS = ("ya", "za", "yb", "zb", "source")

    def __init__(self, prof: "ChunkedProfile", row: int):
        self._prof = prof
        self._row = row

    def __len__(self) -> int:
        return self._prof._offsets[-1]

    def __getitem__(self, ix):
        prof = self._prof
        attr = self._ATTRS[self._row]
        if isinstance(ix, slice):
            start, stop, step = ix.indices(prof._offsets[-1])
            assert step == 1
            return prof._gather(attr, start, stop)
        if ix < 0:
            ix += prof._offsets[-1]
        c = bisect_right(prof._offsets, ix) - 1
        return getattr(prof._chunks[c], attr)[ix - prof._offsets[c]]

    def __setitem__(self, ix: int, value) -> None:
        # Write-through for the live-profile fault-injection site.
        prof = self._prof
        c = bisect_right(prof._offsets, ix) - 1
        getattr(prof._chunks[c], self._ATTRS[self._row])[
            ix - prof._offsets[c]
        ] = value

    def __array__(self, dtype=None, copy=None):
        out = self._prof._gather(
            self._ATTRS[self._row], 0, self._prof._offsets[-1]
        )
        return out if dtype is None else out.astype(dtype)

    def _nd(self, other):
        return np.asarray(other) if isinstance(other, _ChunkLane) else other

    def __le__(self, other):
        return self.__array__() <= self._nd(other)

    def __lt__(self, other):
        return self.__array__() < self._nd(other)

    def __ge__(self, other):
        return self.__array__() >= self._nd(other)

    def __gt__(self, other):
        return self.__array__() > self._nd(other)

    def __eq__(self, other):  # pragma: no cover - completeness
        return self.__array__() == self._nd(other)

    def __ne__(self, other):  # pragma: no cover - completeness
        return self.__array__() != self._nd(other)

    __hash__ = None

    def tolist(self) -> list:
        return self.__array__().tolist()


class ChunkedProfile(FlatProfile):
    """The live profile as a gap buffer of packed chunks.

    The rope's chunked representation (``repro.persistence.rope``)
    adopted for the *mutable* live profile: pieces live in a short
    list of independent :class:`PackedProfile` blocks of
    ~:data:`CHUNK_PIECES` pieces, each with its own two-ended slack.
    A size-changing splice then moves only within the one or two
    chunks it touches — O(chunk) instead of the single-buffer
    layout's O(min(head, tail)) whole-side shift — which is the
    asymptotic fix for clustered size-changing splices on large
    profiles.  Point and window queries are two-level: a ``bisect``
    over the chunk key/offset spines, then array work inside the
    (small) chunks, exactly like the rope's reads.

    Same mutability contract as :class:`PackedProfile` (:meth:`splice`
    edits in place and returns ``self``; pre-splice views are stale).
    Instances are created by :meth:`promote` when a packed profile
    outgrows :data:`repro.envelope.engine.CHUNKED_PROFILE_CUTOFF`
    under :data:`repro.envelope.engine.USE_CHUNKED_PROFILE`; results
    are bit-exact either way, so the toggle is a pure layout ablation
    (the ``sequential-chunked-ablation`` bench row measures it).
    """

    __slots__ = ("_chunks", "_offsets", "_keys")

    def __init__(self, chunks: "list[PackedProfile]"):
        self._chunks = chunks
        self.ya = _ChunkLane(self, 0)
        self.za = _ChunkLane(self, 1)
        self.yb = _ChunkLane(self, 2)
        self.zb = _ChunkLane(self, 3)
        self.source = _ChunkLane(self, 4)
        self._reindex()

    def _reindex(self) -> None:
        """Rebuild the offset/key spines (O(#chunks) lists)."""
        offsets = [0]
        keys = []
        for ch in self._chunks:
            offsets.append(offsets[-1] + ch.size)
            keys.append(float(ch.ya[0]) if ch.size else np.inf)
        self._offsets = offsets
        self._keys = keys

    # -- constructors -------------------------------------------------

    @classmethod
    def promote(
        cls, flat: FlatEnvelope, chunk: int = CHUNK_PIECES
    ) -> "ChunkedProfile":
        """Split any flat profile into packed chunks of ``chunk``
        pieces (the last may be short)."""
        n = len(flat)
        chunks = [
            PackedProfile.pack(flat.window(i, min(i + chunk, n)))
            for i in range(0, max(n, 1), chunk)
        ]
        return cls(chunks)

    @staticmethod
    def from_envelope(env: Envelope) -> "ChunkedProfile":
        return ChunkedProfile.promote(FlatEnvelope.from_pieces(env.pieces))

    # -- two-level lookups --------------------------------------------

    def __len__(self) -> int:
        return self._offsets[-1]

    @property
    def size(self) -> int:
        return self._offsets[-1]

    def __bool__(self) -> bool:
        return self._offsets[-1] > 0

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def _rank(self, y: float, side: str) -> int:
        """Global ``searchsorted`` rank of ``y`` over the conceptual
        concatenated ``ya`` lane (chunk keys pick the one chunk whose
        interior can contain the rank)."""
        keys = self._keys
        c = (
            bisect_right(keys, y) if side == "right" else bisect_left(keys, y)
        ) - 1
        if c < 0:
            return 0
        return self._offsets[c] + int(
            self._chunks[c].ya.searchsorted(y, side=side)
        )

    def _get(self, attr: str, i: int) -> float:
        c = bisect_right(self._offsets, i) - 1
        return getattr(self._chunks[c], attr)[i - self._offsets[c]]

    def _gather(self, attr: str, lo: int, hi: int) -> np.ndarray:
        """One contiguous lane copy of global pieces ``[lo, hi)``."""
        dtype = _I if attr == "source" else _F
        if hi <= lo:
            return np.empty(0, dtype)
        offsets = self._offsets
        c0 = bisect_right(offsets, lo) - 1
        parts = []
        c = c0
        while c < len(self._chunks) and offsets[c] < hi:
            lane = getattr(self._chunks[c], attr)
            parts.append(
                lane[max(0, lo - offsets[c]) : hi - offsets[c]]
            )
            c += 1
        return parts[0].copy() if len(parts) == 1 else np.concatenate(parts)

    # -- scalar-parity queries ----------------------------------------

    def pieces_overlapping(self, ya: float, yb: float) -> tuple[int, int]:
        n = self._offsets[-1]
        if n == 0 or ya >= yb:
            return (0, 0)
        lo = self._rank(ya, "right") - 1
        if lo < 0 or self._get("yb", lo) <= ya:
            lo += 1
        hi = self._rank(yb, "left")
        return (lo, hi)

    def value_at(self, y: float) -> float:
        n = self._offsets[-1]
        if n == 0:
            return NEG_INF
        i = self._rank(y, "right") - 1
        best = NEG_INF
        if i >= 0:
            pya = float(self._get("ya", i))
            pyb = float(self._get("yb", i))
            if pya <= y <= pyb:
                best = _line_z(
                    pya, float(self._get("za", i)), pyb,
                    float(self._get("zb", i)), y,
                )
            if i >= 1 and float(self._get("yb", i - 1)) == y:
                v = float(self._get("zb", i - 1))
                if v > best:
                    best = v
        if i + 1 < n and float(self._get("ya", i + 1)) == y:
            v = float(self._get("za", i + 1))
            if v > best:
                best = v
        return best

    # -- window materialisation ---------------------------------------

    def window(self, lo: int, hi: int) -> FlatEnvelope:
        return FlatEnvelope(
            self._gather("ya", lo, hi),
            self._gather("za", lo, hi),
            self._gather("yb", lo, hi),
            self._gather("zb", lo, hi),
            self._gather("source", lo, hi),
        )

    def window_lists(self, lo: int, hi: int) -> tuple[list, list, list, list]:
        return (
            self._gather("ya", lo, hi).tolist(),
            self._gather("za", lo, hi).tolist(),
            self._gather("yb", lo, hi).tolist(),
            self._gather("zb", lo, hi).tolist(),
        )

    def window_z_min(self, lo: int, hi: int) -> float:
        return min(
            self._gather("za", lo, hi).min(),
            self._gather("zb", lo, hi).min(),
        )

    def window_z_max(self, lo: int, hi: int) -> float:
        return max(
            self._gather("za", lo, hi).max(),
            self._gather("zb", lo, hi).max(),
        )

    def window_pieces(self, lo: int, hi: int) -> list[Piece]:
        return list(
            map(
                Piece._make,
                zip(
                    self._gather("ya", lo, hi).tolist(),
                    self._gather("za", lo, hi).tolist(),
                    self._gather("yb", lo, hi).tolist(),
                    self._gather("zb", lo, hi).tolist(),
                    self._gather("source", lo, hi).tolist(),
                ),
            )
        )

    def to_envelope(self) -> Envelope:
        n = self._offsets[-1]
        return self.window(0, n).to_envelope()

    # -- the chunk-local splice ---------------------------------------

    def splice(self, lo: int, hi: int, ya, za, yb, zb, source) -> "ChunkedProfile":
        """Replace global pieces ``[lo, hi)`` in place; return ``self``.

        Windows inside one chunk (the overwhelmingly common case —
        merge windows are a few pieces) delegate to that chunk's
        :meth:`PackedProfile.splice`, inheriting its slack shifts,
        amortized growth *and* its ``packed_splice`` guard/fault
        envelope.  Windows spanning chunks rebuild just the touched
        chunk range.  An over-full chunk splits, an emptied chunk
        drops — the spine stays O(pieces / CHUNK_PIECES).
        """
        n = self._offsets[-1]
        if _guard.GUARDS_ENABLED and not (0 <= lo <= hi <= n):
            _guard.violation(
                "packed_splice",
                f"splice range [{lo}, {hi}) outside live range [0, {n})",
            )
        offsets = self._offsets
        chunks = self._chunks
        c0 = min(bisect_right(offsets, lo) - 1, len(chunks) - 1)
        if hi <= offsets[c0 + 1]:
            ch = chunks[c0]
            ch.splice(lo - offsets[c0], hi - offsets[c0], ya, za, yb, zb, source)
            if ch.size == 0 and len(chunks) > 1:
                del chunks[c0]
            elif ch.size > 2 * CHUNK_PIECES:
                half = ch.size // 2
                chunks[c0 : c0 + 1] = [
                    PackedProfile.pack(ch.window(0, half)),
                    PackedProfile.pack(ch.window(half, ch.size)),
                ]
        else:
            c1 = bisect_right(offsets, hi - 1) - 1
            l0 = lo - offsets[c0]
            l1 = hi - offsets[c1]
            fresh = [
                np.concatenate(
                    [
                        getattr(chunks[c0], attr)[:l0],
                        np.asarray(new, _I if attr == "source" else _F),
                        getattr(chunks[c1], attr)[l1:],
                    ]
                )
                for attr, new in zip(
                    ("ya", "za", "yb", "zb", "source"),
                    (ya, za, yb, zb, source),
                )
            ]
            run = FlatEnvelope(*fresh)
            k = len(fresh[0])
            repl = [
                PackedProfile.pack(run.window(i, min(i + CHUNK_PIECES, k)))
                for i in range(0, k, CHUNK_PIECES)
            ]
            if not repl and len(chunks) == c1 - c0 + 1:
                repl = [PackedProfile.empty()]
            chunks[c0 : c1 + 1] = repl
        self._reindex()
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChunkedProfile({self.size} pieces,"
            f" {len(self._chunks)} chunks)"
        )
