"""Envelope (upper-profile) algebra.

* :mod:`repro.envelope.chain` — representation (:class:`Envelope`).
* :mod:`repro.envelope.merge` — point-wise max with crossing detection.
* :mod:`repro.envelope.build` — divide-and-conquer construction (Lemma 3.1).
* :mod:`repro.envelope.visibility` — visible parts of a segment.
* :mod:`repro.envelope.splice` — localised single-segment insertion.
"""

from repro.envelope.build import build_envelope, build_envelope_sequential
from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.envelope.merge import (
    Crossing,
    MergeResult,
    envelope_breakpoints,
    merge_envelopes,
    merge_many,
)
from repro.envelope.splice import InsertResult, insert_segment
from repro.envelope.visibility import (
    VisibilityResult,
    VisiblePart,
    visible_parts,
)

__all__ = [
    "Crossing",
    "Envelope",
    "EnvelopeBuilder",
    "InsertResult",
    "MergeResult",
    "Piece",
    "VisibilityResult",
    "VisiblePart",
    "build_envelope",
    "build_envelope_sequential",
    "envelope_breakpoints",
    "insert_segment",
    "merge_envelopes",
    "merge_many",
    "visible_parts",
]
