"""Envelope (upper-profile) algebra.

* :mod:`repro.envelope.chain` — representation (:class:`Envelope`).
* :mod:`repro.envelope.merge` — point-wise max with crossing detection
  (the pure-Python reference kernel).
* :mod:`repro.envelope.flat` — vectorized NumPy kernel:
  :class:`FlatEnvelope` structure-of-arrays, batched merge sweeps,
  segmented stream merge, level-batched construction.
* :mod:`repro.envelope.flat_visibility` — batched NumPy visibility
  kernel (many segment-vs-profile queries in one sweep).
* :mod:`repro.envelope.engine` — kernel selection.
* :mod:`repro.envelope.build` — divide-and-conquer construction (Lemma 3.1).
* :mod:`repro.envelope.visibility` — visible parts of a segment.
* :mod:`repro.envelope.splice` — localised single-segment insertion
  and the window-local :func:`splice_merge`.
* :mod:`repro.envelope.flat_splice` — flat-native incremental profile
  (:class:`FlatProfile`): sequential inserts as locate → windowed
  kernels → array splice, no tuple materialisation.
* :mod:`repro.envelope.flat_fused` — fused visibility+merge window
  kernel: one sweep (scalar or vectorized, cutoff
  :data:`repro.envelope.engine.FLAT_FUSED_CUTOFF`) answers an
  insert's visibility *and* merged window together.
* :mod:`repro.envelope.packed` — packed single-buffer live profile
  (:class:`PackedProfile`): one ``(5, capacity)`` allocation with
  slack at both ends, splices edit it in place (the default
  sequential layout, :data:`repro.envelope.engine.USE_PACKED_PROFILE`).

Engine selection
----------------

Algorithms that merge envelopes accept an ``engine`` keyword (and the
CLI a ``--engine`` flag):

``"python"``
    The reference sweep: walks elementary intervals one at a time.
    Semantic ground truth, zero dependencies.
``"numpy"``
    The flat kernel: union breakpoints by sorted events, covering
    pieces by segmented running maxima, all interval evaluations as
    single array expressions, crossings and output pieces by boolean
    masks.  Independent merges (a divide-and-conquer level, a PCT
    layer) batch into *one* sweep.  Default when NumPy is available.
``None`` / ``"auto"``
    :data:`repro.envelope.engine.DEFAULT_ENGINE`.

The two kernels are exact replicas of each other: same pieces, same
sources, same crossings, same ``ops`` (elementary-interval counts, so
PRAM work/depth accounting is engine-independent).  The property suite
in ``tests/test_envelope_flat.py`` enforces this equivalence on
adversarial inputs; pick an engine purely on wall-clock grounds.

NumPy is an optional dependency: everything except
:mod:`repro.envelope.flat` works without it, and ``engine=None``
degrades to the Python kernel.
"""

from repro.envelope.build import build_envelope, build_envelope_sequential
from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.envelope.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    HAVE_NUMPY,
    merge_dispatch,
    resolve_engine,
    visibility_dispatch,
)
from repro.envelope.merge import (
    Crossing,
    MergeResult,
    envelope_breakpoints,
    merge_envelopes,
    merge_many,
)
from repro.envelope.splice import (
    InsertResult,
    SpliceMergeResult,
    insert_segment,
    splice_merge,
)
from repro.envelope.visibility import (
    VisibilityResult,
    VisiblePart,
    visible_parts,
)

__all__ = [
    "Crossing",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Envelope",
    "EnvelopeBuilder",
    "HAVE_NUMPY",
    "InsertResult",
    "MergeResult",
    "Piece",
    "SpliceMergeResult",
    "VisibilityResult",
    "VisiblePart",
    "build_envelope",
    "build_envelope_sequential",
    "envelope_breakpoints",
    "insert_segment",
    "merge_dispatch",
    "merge_envelopes",
    "merge_many",
    "resolve_engine",
    "splice_merge",
    "visibility_dispatch",
    "visible_parts",
]

if HAVE_NUMPY:  # pragma: no branch - numpy ships in the toolchain
    from repro.envelope.flat import (  # noqa: F401
        FlatEnvelope,
        FlatMergeResult,
        build_envelope_flat,
        merge_envelopes_flat,
        merge_sorted_streams,
    )
    from repro.envelope.flat_fused import (  # noqa: F401
        FusedWindowResult,
        fused_insert_window,
        fused_insert_window_flat,
    )
    from repro.envelope.flat_splice import (  # noqa: F401
        FlatInsertResult,
        FlatProfile,
        insert_segment_flat,
    )
    from repro.envelope.flat_visibility import (  # noqa: F401
        FlatVisibility,
        batch_visible_parts,
        visible_parts_flat,
    )
    from repro.envelope.packed import (  # noqa: F401
        PackedProfile,
    )

    __all__ += [
        "FlatEnvelope",
        "FlatInsertResult",
        "FlatMergeResult",
        "FlatProfile",
        "PackedProfile",
        "FlatVisibility",
        "FusedWindowResult",
        "batch_visible_parts",
        "build_envelope_flat",
        "fused_insert_window",
        "fused_insert_window_flat",
        "insert_segment_flat",
        "merge_envelopes_flat",
        "merge_sorted_streams",
        "visible_parts_flat",
    ]
