"""cffi out-of-line API builder for the compiled fused-insert core.

Running this module (``python src/repro/envelope/_ccore_build.py``)
compiles ``repro.envelope._repro_ccore`` — a small C extension holding
the whole per-insert hot path of the sequential algorithm as **one C
call** against the :class:`~repro.envelope.packed.PackedProfile`
``(5, capacity)`` float64 buffer:

* locate — the binary search of
  :meth:`~repro.envelope.flat.FlatEnvelope.pieces_overlapping` on the
  live ``ya`` row (same bisection sides as ``ndarray.searchsorted``);
* the fused visibility+merge sweep of
  :func:`~repro.envelope.flat_fused.fused_insert_window`, including
  the exact all-hidden / fully-visible fast-path predicates of
  ``_insert_fused_small`` (same margin guards, same short-circuit
  order);
* the in-place window write + single head/tail shift splice of
  :meth:`~repro.envelope.packed.PackedProfile.splice`
  (``_splice_impl`` semantics: shrink shifts the smaller side inward,
  growth prefers the cheaper fitting side, reallocation is signalled
  back to Python — the amortized-doubling grow stays Python-side).

Bit-exactness contract: every float expression below is a literal
transcription of the pure-Python scalar loop (``_line_z`` endpoint
shortcuts, sign predicates, ``t = du / (du - dv)`` crossing parameter,
part/piece coalescing rules), evaluated in the same order on IEEE
doubles.  ``-ffp-contract=off`` keeps compilers from fusing
``a + b * c`` into an FMA (bit-identical results on x86-64 *and*
aarch64), so the C core, the scalar loop and the numpy kernel all
produce float-for-float identical profiles, visible parts, crossings
and ``ops`` — the property ``tests/test_envelope_ccore.py`` fuzzes.

Buffer ownership: the C side **never allocates profile storage**.  It
mutates the caller's packed buffer in place (under the GIL — cffi API
calls do not release it) and keeps three small static scratch arrays
(merged window, visible parts, crossings) that it reallocates itself;
Python copies results out immediately after each call, so the scratch
is dead between calls.  When the packed buffer cannot absorb a growth
splice the call returns ``GROW`` *without touching the buffer* and the
wrapper commits through :meth:`PackedProfile.splice`, which owns the
amortized-doubling reallocation policy.

The build is optional end to end: ``setup.py`` marks the extension
``optional`` (no compiler → pure-Python/numpy cascade, same results),
and ``REPRO_CCORE_BUILD=0`` skips it entirely.
"""

import cffi

CDEF = """
int repro_fused_insert(
    double *buf, int64_t cap, int64_t *state,
    double y1, double z1, double y2, double z2,
    int64_t src, double eps, int commit, int64_t *out);
double *repro_parts_ptr(void);
double *repro_cross_ptr(void);
double *repro_merged_ptr(int field);
int64_t *repro_merged_src_ptr(void);
"""

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* Status codes (mirrored in repro/envelope/_ccore.py). */
#define ST_HIDDEN   0  /* no mutation; segment fully hidden          */
#define ST_DONE     1  /* merged window spliced into the buffer      */
#define ST_GROW     2  /* merged window in scratch; caller commits   */
#define ST_FALLBACK 3  /* unsupported window (synthetic source, OOM) */
#define ST_FAULT    5  /* post-condition failed; nothing committed   */

/* out[] layout */
#define O_NPARTS 0
#define O_NCROSS 1
#define O_VISOPS 2
#define O_TOTOPS 3
#define O_SYNCED 4
#define O_LO     5
#define O_HI     6
#define O_MK     7

/* ---- static result scratch (GIL-serialised; Python copies out
 * immediately after each call) -------------------------------------- */
static double *g_mya = NULL, *g_mza = NULL, *g_myb = NULL, *g_mzb = NULL;
static int64_t *g_msrc = NULL;
static double *g_parts = NULL;   /* (ya, yb) pairs */
static double *g_cross = NULL;   /* (w, z) pairs   */
static int64_t g_cap = 0;        /* lanes in every scratch array */

static int ensure_scratch(int64_t win)
{
    /* Bounds per sweep over a k-piece window: merged <= 3k + 3 adds
     * (head + k-1 gaps + 2 per overlap + tail), parts <= 2k + 2
     * pairs, crossings <= k pairs.  One shared lane count covers all
     * three with headroom. */
    int64_t need = 3 * win + 8;
    double *p;
    int64_t *q;
    if (g_cap >= need) return 1;
    need += need / 2;
    p = (double *)realloc(g_mya, (size_t)need * sizeof(double));
    if (!p) return 0;
    g_mya = p;
    p = (double *)realloc(g_mza, (size_t)need * sizeof(double));
    if (!p) return 0;
    g_mza = p;
    p = (double *)realloc(g_myb, (size_t)need * sizeof(double));
    if (!p) return 0;
    g_myb = p;
    p = (double *)realloc(g_mzb, (size_t)need * sizeof(double));
    if (!p) return 0;
    g_mzb = p;
    q = (int64_t *)realloc(g_msrc, (size_t)need * sizeof(int64_t));
    if (!q) return 0;
    g_msrc = q;
    p = (double *)realloc(g_parts, (size_t)(2 * need) * sizeof(double));
    if (!p) return 0;
    g_parts = p;
    p = (double *)realloc(g_cross, (size_t)(2 * need) * sizeof(double));
    if (!p) return 0;
    g_cross = p;
    g_cap = need;
    return 1;
}

double *repro_parts_ptr(void) { return g_parts; }
double *repro_cross_ptr(void) { return g_cross; }
double *repro_merged_ptr(int field)
{
    switch (field) {
    case 0: return g_mya;
    case 1: return g_mza;
    case 2: return g_myb;
    default: return g_mzb;
    }
}
int64_t *repro_merged_src_ptr(void) { return g_msrc; }

/* ---- exact scalar primitives -------------------------------------- */

/* Piece/segment supporting-line height: the float arithmetic of
 * _line_z (endpoint shortcuts, then lerp with t == 0/1 shortcuts). */
static double line_z(double ya, double za, double yb, double zb, double y)
{
    double t;
    if (y == ya) return za;
    if (y == yb) return zb;
    t = (y - ya) / (yb - ya);
    if (t == 0.0) return za;
    if (t == 1.0) return zb;
    return za + (zb - za) * t;
}

/* ndarray.searchsorted side="right": first index with a[i] > x. */
static int64_t upper_bound(const double *a, int64_t n, double x)
{
    int64_t lo = 0, hi = n, mid;
    while (lo < hi) {
        mid = (lo + hi) >> 1;
        if (a[mid] <= x) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* ndarray.searchsorted side="left": first index with a[i] >= x. */
static int64_t lower_bound(const double *a, int64_t n, double x)
{
    int64_t lo = 0, hi = n, mid;
    while (lo < hi) {
        mid = (lo + hi) >> 1;
        if (a[mid] < x) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* _acc_add: the visibility part accumulator (mutable last-row merge). */
static void acc_add(int64_t *np, double a, double b, double eps)
{
    if (b < a) return;
    if (*np) {
        double *last = g_parts + 2 * (*np - 1);
        if (a <= last[1] + eps) {
            if (b > last[1]) last[1] = b;
            return;
        }
    }
    g_parts[2 * *np] = a;
    g_parts[2 * *np + 1] = b;
    (*np)++;
}

/* add(): merged-piece emission with the real-source coalescing rule
 * of EnvelopeBuilder (same src, contiguous, heights agree within eps). */
static void m_add(int64_t *k, double pya, double pza, double pyb,
                  double pzb, int64_t s, double eps)
{
    if (pya >= pyb) return;
    if (*k && g_msrc[*k - 1] == s && g_myb[*k - 1] == pya
        && fabs(g_mzb[*k - 1] - pza) <= eps) {
        g_myb[*k - 1] = pyb;
        g_mzb[*k - 1] = pzb;
        return;
    }
    g_mya[*k] = pya;
    g_mza[*k] = pza;
    g_myb[*k] = pyb;
    g_mzb[*k] = pzb;
    g_msrc[*k] = s;
    (*k)++;
}

/* One 2D shift over all five rows (the int64-bit-view slice move of
 * _splice_impl, as five memmoves — byte-identical for float lanes). */
static void shift_rows(double *buf, int64_t cap, int64_t from,
                       int64_t to, int64_t count)
{
    int r;
    if (count <= 0 || from == to) return;
    for (r = 0; r < 5; r++) {
        double *row = buf + (int64_t)r * cap;
        memmove(row + to, row + from, (size_t)count * sizeof(double));
    }
}

/* check_merged_lists, pre-commit: sorted, non-overlapping, finite z. */
static int merged_ok(int64_t k)
{
    double prev = -INFINITY;
    int64_t j;
    for (j = 0; j < k; j++) {
        double a = g_mya[j], b = g_myb[j];
        if (!(prev <= a && a <= b)) return 0;
        if (g_mza[j] != g_mza[j] || g_mzb[j] != g_mzb[j]) return 0;
        prev = b;
    }
    return 1;
}

/* ---- the fused insert --------------------------------------------- */

int repro_fused_insert(
    double *buf, int64_t cap, int64_t *state,
    double y1, double z1, double y2, double z2,
    int64_t src, double eps, int commit, int64_t *out)
{
    int64_t beg = state[0], end = state[1];
    int64_t n = end - beg;
    double *rya = buf + beg;
    double *rza = buf + cap + beg;
    double *ryb = buf + 2 * cap + beg;
    double *rzb = buf + 3 * cap + beg;
    int64_t *rsrc = (int64_t *)(buf + 4 * cap) + beg;
    int64_t lo, hi, win, j;
    int64_t np = 0, nc = 0, ko = 0;   /* parts, crossings, merged */
    int64_t vis_ops = 0, merge_ops = 0;
    const double *wya, *wza, *wyb, *wzb;
    const int64_t *wsrc;
    double prev_zs;
    int64_t d, head, tail, a;
    int synced = 0;

    /* locate: pieces_overlapping(y1, y2) on the live ya row. */
    if (n == 0 || y1 >= y2) {
        lo = 0; hi = 0;
    } else {
        lo = upper_bound(rya, n, y1) - 1;
        if (lo < 0 || ryb[lo] <= y1) lo += 1;
        hi = lower_bound(rya, n, y2);
    }
    win = hi - lo;
    out[O_LO] = lo;
    out[O_HI] = hi;
    out[O_SYNCED] = 0;
    out[O_NCROSS] = 0;

    if (!ensure_scratch(win)) return ST_FALLBACK;

    if (win == 0) {
        /* Empty window: one trailing scan interval, one merge
         * interval (the segment verbatim) — unless the span is
         * eps-degenerate, which the scan reports hidden. */
        if (y2 - y1 > eps) {
            g_parts[0] = y1; g_parts[1] = y2;
            g_mya[0] = y1; g_mza[0] = z1;
            g_myb[0] = y2; g_mzb[0] = z2;
            g_msrc[0] = src;
            ko = 1;
            out[O_NPARTS] = 1;
            out[O_VISOPS] = 1;
            out[O_TOTOPS] = 2;
            goto COMMIT;
        }
        out[O_NPARTS] = 0;
        out[O_VISOPS] = 1;
        out[O_TOTOPS] = 1;
        out[O_MK] = 0;
        return ST_HIDDEN;
    }

    wya = rya + lo; wza = rza + lo;
    wyb = ryb + lo; wzb = rzb + lo;
    wsrc = rsrc + lo;

    {
        double za0 = wza[0];
        double top = z1 >= z2 ? z1 : z2;
        if (top < za0) {
            /* All-hidden fast path: gap-free covering window whose
             * lowest endpoint safely clears the segment's top. */
            if (wya[0] <= y1 && wyb[win - 1] >= y2) {
                double minz = za0 <= wzb[0] ? za0 : wzb[0];
                double prev_yb = wyb[0];
                int gap_free = 1;
                for (j = 1; j < win; j++) {
                    if (wya[j] != prev_yb) { gap_free = 0; break; }
                    prev_yb = wyb[j];
                    if (wza[j] < minz) minz = wza[j];
                    if (wzb[j] < minz) minz = wzb[j];
                }
                if (gap_free && minz - top >
                        eps + 1e-12 * (fabs(minz) + fabs(top) + 1.0)) {
                    out[O_NPARTS] = 0;
                    out[O_VISOPS] = win;
                    out[O_TOTOPS] = win;
                    out[O_MK] = 0;
                    return ST_HIDDEN;
                }
            }
        } else {
            /* Fully-visible fast path: the segment's bottom safely
             * clears the window's highest endpoint; merged window =
             * [head clip?] + segment + [tail clip?]. */
            double bot = z1 <= z2 ? z1 : z2;
            if (bot > za0 && y2 - y1 > eps) {
                double maxz = za0 >= wzb[0] ? za0 : wzb[0];
                double prev_yb = wyb[0];
                int64_t gaps = 0;
                for (j = 1; j < win; j++) {
                    if (prev_yb < wya[j]) gaps++;
                    prev_yb = wyb[j];
                    if (wza[j] > maxz) maxz = wza[j];
                    if (wzb[j] > maxz) maxz = wzb[j];
                }
                if (bot - maxz >
                        eps + 1e-12 * (fabs(maxz) + fabs(bot) + 1.0)) {
                    double ya0 = wya[0], yb_l = wyb[win - 1];
                    int64_t fvis = win + gaps + (y1 < ya0) + (y2 > yb_l);
                    int64_t fmerge = win + gaps + (ya0 != y1) + (yb_l != y2);
                    if (ya0 < y1) {
                        g_mya[ko] = ya0; g_mza[ko] = za0;
                        g_myb[ko] = y1;
                        g_mzb[ko] = line_z(ya0, za0, wyb[0], wzb[0], y1);
                        g_msrc[ko] = wsrc[0];
                        ko++;
                    }
                    g_mya[ko] = y1; g_mza[ko] = z1;
                    g_myb[ko] = y2; g_mzb[ko] = z2;
                    g_msrc[ko] = src;
                    ko++;
                    if (yb_l > y2) {
                        g_mya[ko] = y2;
                        g_mza[ko] = line_z(wya[win - 1], wza[win - 1],
                                           yb_l, wzb[win - 1], y2);
                        g_myb[ko] = yb_l; g_mzb[ko] = wzb[win - 1];
                        g_msrc[ko] = wsrc[win - 1];
                        ko++;
                    }
                    g_parts[0] = y1; g_parts[1] = y2;
                    out[O_NPARTS] = 1;
                    out[O_VISOPS] = fvis;
                    out[O_TOTOPS] = fvis + fmerge;
                    goto COMMIT;
                }
            }
        }
    }

    /* Synthetic (negative-source) pieces coalesce on a different
     * builder rule: fall back to the Python cascade (checked after
     * the fast paths, exactly like the scalar loop). */
    for (j = 0; j < win; j++)
        if (wsrc[j] < 0) return ST_FALLBACK;

    /* ---- the fused visibility+merge sweep (fused_insert_window) --- */
    prev_zs = z1;
    for (j = 0; j < win; j++) {
        double pya = wya[j], pza = wza[j];
        double pyb = wyb[j], pzb = wzb[j];
        double u, v, zs_u, zs_v, zw_u, zw_v, du, dv;
        int su, sv;
        if (j == 0) {
            if (y1 < pya) {
                /* Head gap: the segment alone, visible and emitted. */
                zs_u = line_z(y1, z1, y2, z2, pya);
                acc_add(&np, y1, pya, eps);
                m_add(&ko, y1, z1, pya, zs_u, src, eps);
                vis_ops += 1;
                merge_ops += 1;
                u = pya;
            } else {
                if (pya < y1) {
                    /* Window-piece head before y1: merge-only. */
                    m_add(&ko, pya, pza, y1,
                          line_z(pya, pza, pyb, pzb, y1), wsrc[j], eps);
                    merge_ops += 1;
                }
                u = y1;
                zs_u = z1;
            }
        } else {
            double g0 = wyb[j - 1];
            u = pya;
            if (g0 < pya) {
                /* Gap between pieces — always inside (y1, y2). */
                zs_u = line_z(y1, z1, y2, z2, pya);
                acc_add(&np, g0, pya, eps);
                m_add(&ko, g0, prev_zs, pya, zs_u, src, eps);
                vis_ops += 1;
                merge_ops += 1;
            } else {
                zs_u = prev_zs;
            }
        }
        if (pyb < y2) {
            v = pyb;
            zs_v = line_z(y1, z1, y2, z2, pyb);
        } else {
            v = y2;
            zs_v = z2;
        }
        /* Overlap interval (u, v): non-empty by the window invariant. */
        zw_u = u == pya ? pza : line_z(pya, pza, pyb, pzb, u);
        zw_v = v == pyb ? pzb : line_z(pya, pza, pyb, pzb, v);
        du = zs_u - zw_u;
        dv = zs_v - zw_v;
        su = fabs(du) <= eps ? 0 : (du > 0 ? 1 : -1);
        sv = fabs(dv) <= eps ? 0 : (dv > 0 ? 1 : -1);
        vis_ops += 1;
        merge_ops += 1;
        if (su >= 0 && sv >= 0 && (su > 0 || sv > 0)) {
            /* Segment strictly above somewhere, never strictly below. */
            acc_add(&np, u, v, eps);
            m_add(&ko, u, zs_u, v, zs_v, src, eps);
        } else if (su <= 0 && sv <= 0) {
            /* Hidden (or coincident — the window wins ties). */
            m_add(&ko, u, zw_u, v, zw_v, wsrc[j], eps);
        } else {
            double t = du / (du - dv);
            double w = u + t * (v - u);
            if (w <= u || w >= v) {
                /* Numeric clamp: treat as one-sided. */
                double wc;
                if (su < 0 || sv > 0)
                    m_add(&ko, u, zw_u, v, zw_v, wsrc[j], eps);
                else
                    m_add(&ko, u, zs_u, v, zs_v, src, eps);
                wc = w <= u ? u : v;
                if (su > 0)
                    acc_add(&np, u, wc, eps);
                else
                    acc_add(&np, wc, v, eps);
            } else {
                double zw_w = line_z(pya, pza, pyb, pzb, w);
                double zs_w = line_z(y1, z1, y2, z2, w);
                if (su > 0) {
                    acc_add(&np, u, w, eps);
                    m_add(&ko, u, zs_u, w, zs_w, src, eps);
                    m_add(&ko, w, zw_w, v, zw_v, wsrc[j], eps);
                } else {
                    acc_add(&np, w, v, eps);
                    m_add(&ko, u, zw_u, w, zw_w, wsrc[j], eps);
                    m_add(&ko, w, zs_w, v, zs_v, src, eps);
                }
                g_cross[2 * nc] = w;
                g_cross[2 * nc + 1] = zs_w;
                nc++;
            }
        }
        if (j == win - 1) {
            if (v < y2) {
                /* Trailing gap past the last piece. */
                acc_add(&np, v, y2, eps);
                m_add(&ko, v, zs_v, y2, z2, src, eps);
                vis_ops += 1;
                merge_ops += 1;
            } else if (y2 < pyb) {
                /* Window-piece tail past y2: merge-only. */
                m_add(&ko, y2, zw_v, pyb, pzb, wsrc[j], eps);
                merge_ops += 1;
            }
        }
        prev_zs = zs_v;
    }

    /* Width filter (b - a > eps), compacting in place. */
    {
        int64_t kept = 0;
        for (j = 0; j < np; j++) {
            double pa = g_parts[2 * j], pb = g_parts[2 * j + 1];
            if (pb - pa > eps) {
                g_parts[2 * kept] = pa;
                g_parts[2 * kept + 1] = pb;
                kept++;
            }
        }
        np = kept;
    }
    if (vis_ops < 1) vis_ops = 1;
    out[O_NPARTS] = np;
    out[O_NCROSS] = nc;
    out[O_VISOPS] = vis_ops;
    if (np == 0) {
        /* Fully hidden: no splice, no merge ops charged. */
        out[O_TOTOPS] = vis_ops;
        out[O_MK] = 0;
        return ST_HIDDEN;
    }
    out[O_TOTOPS] = vis_ops + merge_ops;

COMMIT:
    out[O_MK] = ko;
    if (!commit) return ST_GROW;
    if (!merged_ok(ko)) return ST_FAULT;

    /* ---- PackedProfile._splice_impl, in C ------------------------- */
    d = ko - (hi - lo);
    if (d) {
        head = lo;
        tail = n - hi;
        if (d < 0) {
            /* Shrink: shift the smaller side inward (always fits). */
            if (head <= tail) {
                shift_rows(buf, cap, beg, beg - d, head);
                beg -= d;
            } else {
                shift_rows(buf, cap, beg + hi, beg + lo + ko, tail);
                end += d;
            }
        } else {
            /* Grow: prefer the cheaper side whose slack fits. */
            int fits_head = beg >= d;
            int fits_tail = cap - end >= d;
            if (fits_head && (head <= tail || !fits_tail)) {
                shift_rows(buf, cap, beg, beg - d, head);
                beg -= d;
            } else if (fits_tail) {
                shift_rows(buf, cap, beg + hi, beg + lo + ko, tail);
                end += d;
            } else {
                /* No slack: the wrapper reallocates via
                 * PackedProfile.splice (amortized doubling). */
                return ST_GROW;
            }
        }
        synced = 1;
    }
    a = beg + lo;
    memcpy(buf + a, g_mya, (size_t)ko * sizeof(double));
    memcpy(buf + cap + a, g_mza, (size_t)ko * sizeof(double));
    memcpy(buf + 2 * cap + a, g_myb, (size_t)ko * sizeof(double));
    memcpy(buf + 3 * cap + a, g_mzb, (size_t)ko * sizeof(double));
    memcpy((int64_t *)(buf + 4 * cap) + a, g_msrc,
           (size_t)ko * sizeof(int64_t));
    state[0] = beg;
    state[1] = end;
    out[O_SYNCED] = synced;
    return ST_DONE;
}
"""

ffibuilder = cffi.FFI()
ffibuilder.cdef(CDEF)
ffibuilder.set_source(
    "repro.envelope._repro_ccore",
    C_SOURCE,
    extra_compile_args=["-O2", "-ffp-contract=off"],
)


if __name__ == "__main__":
    import os

    # In-place build: drop the extension next to this file so the
    # PYTHONPATH=src layout imports it without an install step.
    src_dir = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    ffibuilder.compile(tmpdir=src_dir, verbose=True)
