"""Localised envelope update: insert one segment.

The sequential (Reif–Sen-style) algorithm processes edges front to
back, testing each against the current profile and splicing its
visible parts in.  A full re-merge would cost Θ(profile size) per
edge; :func:`insert_segment` touches only the pieces overlapping the
segment's y-range, so the cost is O(log m) for the locate plus the
local range size — the pieces it deletes are deleted forever, which is
what makes the sequential algorithm output-sensitive in aggregate.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.envelope.chain import Envelope
from repro.envelope.engine import merge_dispatch, visibility_dispatch
from repro.envelope.visibility import VisibilityResult
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment

__all__ = ["InsertResult", "insert_segment"]


class InsertResult(NamedTuple):
    """Outcome of inserting one segment into a profile.

    Attributes
    ----------
    envelope:
        The updated profile ``max(old, segment)``.
    visibility:
        Visible parts of the segment against the *old* profile.
    ops:
        Elementary intervals examined (scan + local merge).
    """

    envelope: Envelope
    visibility: VisibilityResult
    ops: int


def insert_segment(
    env: Envelope,
    seg: ImageSegment,
    *,
    eps: float = EPS,
    engine: Optional[str] = None,
) -> InsertResult:
    """Insert ``seg`` into profile ``env``; see module docstring.

    Vertical projections never alter the profile (measure-zero image)
    but still get a visibility verdict via point query.  ``engine``
    selects the kernel for both the visibility scan and the local
    merge (the overlapped window can span many pieces on churny
    profiles; see :mod:`repro.envelope.engine`).
    """
    vis = visibility_dispatch(seg, env, eps=eps, engine=engine)
    if seg.is_vertical:
        return InsertResult(env, vis, vis.ops)
    if vis.fully_hidden:
        return InsertResult(env, vis, vis.ops)

    lo, hi = env.pieces_overlapping(seg.y1, seg.y2)
    local = Envelope(env.pieces[lo:hi])
    merged = merge_dispatch(
        local,
        Envelope.from_segment(seg),
        eps=eps,
        record_crossings=False,
        engine=engine,
    )
    new_pieces = (
        env.pieces[:lo] + merged.envelope.pieces + env.pieces[hi:]
    )
    return InsertResult(
        Envelope(new_pieces), vis, vis.ops + merged.ops
    )
