"""Localised envelope update: insert one segment.

The sequential (Reif–Sen-style) algorithm processes edges front to
back, testing each against the current profile and splicing its
visible parts in.  A full re-merge would cost Θ(profile size) per
edge; :func:`insert_segment` touches only the pieces overlapping the
segment's y-range, so the cost is O(log m) for the locate plus the
local range size — the pieces it deletes are deleted forever, which is
what makes the sequential algorithm output-sensitive in aggregate.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.envelope.chain import Envelope
from repro.envelope.engine import merge_dispatch, visibility_dispatch
from repro.envelope.merge import Crossing
from repro.envelope.visibility import VisibilityResult
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment

__all__ = [
    "InsertResult",
    "insert_segment",
    "SpliceMergeResult",
    "splice_merge",
]


class InsertResult(NamedTuple):
    """Outcome of inserting one segment into a profile.

    Attributes
    ----------
    envelope:
        The updated profile ``max(old, segment)``.
    visibility:
        Visible parts of the segment against the *old* profile.
    ops:
        Elementary intervals examined (scan + local merge).
    """

    envelope: Envelope
    visibility: VisibilityResult
    ops: int


def insert_segment(
    env: Envelope,
    seg: ImageSegment,
    *,
    eps: float = EPS,
    engine: Optional[str] = None,
) -> InsertResult:
    """Insert ``seg`` into profile ``env``; see module docstring.

    Vertical projections never alter the profile (measure-zero image)
    but still get a visibility verdict via point query.  ``engine``
    selects the kernel for both the visibility scan and the local
    merge (the overlapped window can span many pieces on churny
    profiles; see :mod:`repro.envelope.engine`).
    """
    vis = visibility_dispatch(seg, env, eps=eps, engine=engine)
    if seg.is_vertical:
        return InsertResult(env, vis, vis.ops)
    if vis.fully_hidden:
        return InsertResult(env, vis, vis.ops)

    lo, hi = env.pieces_overlapping(seg.y1, seg.y2)
    local = Envelope(env.pieces[lo:hi])
    merged = merge_dispatch(
        local,
        Envelope.from_segment(seg),
        eps=eps,
        record_crossings=False,
        engine=engine,
    )
    new_pieces = (
        env.pieces[:lo] + merged.envelope.pieces + env.pieces[hi:]
    )
    return InsertResult(
        Envelope(new_pieces), vis, vis.ops + merged.ops
    )


class SpliceMergeResult(NamedTuple):
    """Outcome of merging one envelope into another by local splice.

    Attributes
    ----------
    envelope:
        ``max(env, other)`` (same pointwise values as a full merge; the
        pieces may differ from a full merge only by coalescing at the
        two splice boundaries).
    crossings:
        Transversal crossings inside the spliced window, in y-order.
    ops:
        Elementary intervals of the window merge — output-sensitive in
        ``other``'s span, unlike a full merge's Θ(env size) charge.
    materialised:
        Pieces copied into the result (0 when ``other`` was empty and
        ``env`` is returned shared).
    """

    envelope: Envelope
    crossings: list[Crossing]
    ops: int
    materialised: int


def splice_merge(
    env: Envelope,
    other: Envelope,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
    engine: Optional[str] = None,
) -> SpliceMergeResult:
    """Merge ``other`` into ``env`` touching only the overlapped window.

    ``other`` spans a bounded y-range, so only the pieces of ``env``
    overlapping that range can change under a pointwise max; the head
    and tail pass through untouched — the same shape as
    :func:`insert_segment`, generalised from one segment to a whole
    envelope.  This is the Phase-2 ``direct`` mode's merge: a full
    :func:`~repro.envelope.merge.merge_envelopes` would sweep (and
    charge ``ops`` for) every elementary interval of the inherited
    profile on every merge, even far outside the intermediate
    envelope's span.
    """
    if not other.pieces:
        return SpliceMergeResult(env, [], 0, 0)
    s, t = other.y_span()
    lo, hi = env.pieces_overlapping(s, t)
    local = Envelope(env.pieces[lo:hi])
    res = merge_dispatch(
        local,
        other,
        eps=eps,
        record_crossings=record_crossings,
        engine=engine,
    )
    pieces = env.pieces[:lo] + res.envelope.pieces + env.pieces[hi:]
    return SpliceMergeResult(
        Envelope(pieces), res.crossings, res.ops, len(pieces)
    )
