"""Visibility of a segment against an upper profile.

The fundamental step of the hidden-surface algorithm (sequential and
parallel alike): given the profile ``P`` of everything *in front of*
edge ``e``, the visible portion of ``e`` is exactly the part of its
image-plane projection that lies strictly above ``P``.

``visible_parts`` returns the maximal visible sub-intervals and the
visibility-change points (where the segment crosses the profile);
those change points are vertices of the final image and are counted
in the output size ``k``.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.envelope.chain import Envelope
from repro.geometry.primitives import EPS, NEG_INF
from repro.geometry.segments import ImageSegment

__all__ = ["VisiblePart", "VisibilityResult", "visible_parts"]


class VisiblePart(NamedTuple):
    """One maximal visible sub-interval of a segment's projection."""

    ya: float
    yb: float

    @property
    def width(self) -> float:
        return self.yb - self.ya


class VisibilityResult(NamedTuple):
    """Visible portions of a segment against a profile.

    Attributes
    ----------
    parts:
        Maximal visible sub-intervals, in y-order.  For a vertical
        projection the single part is degenerate (``ya == yb``).
    crossings:
        ``(y, z)`` points where visibility changes because the segment
        transversally crosses the profile (segment endpoints are not
        included — they are image vertices a priori).
    ops:
        Elementary intervals examined (sequential work of the scan).
    """

    parts: list[VisiblePart]
    crossings: list[tuple[float, float]]
    ops: int

    @property
    def fully_hidden(self) -> bool:
        return not self.parts

    @property
    def fully_visible(self) -> bool:
        return len(self.parts) == 1 and not self.crossings

    def total_width(self) -> float:
        return sum(p.width for p in self.parts)


class _PartAccumulator:
    """Merges adjacent visible elementary intervals into maximal parts."""

    __slots__ = ("parts", "eps")

    def __init__(self, eps: float):
        self.parts: list[VisiblePart] = []
        self.eps = eps

    def add(self, ya: float, yb: float) -> None:
        if yb < ya:
            return
        if self.parts and ya <= self.parts[-1].yb + self.eps:
            last = self.parts[-1]
            if yb > last.yb:
                self.parts[-1] = VisiblePart(last.ya, yb)
            return
        self.parts.append(VisiblePart(ya, yb))


def visible_parts(
    seg: ImageSegment, env: Envelope, *, eps: float = EPS
) -> VisibilityResult:
    """Portions of ``seg`` strictly above ``env``.

    Convention: parts where the segment coincides with the profile
    (within ``eps``) are **hidden** — the profile belongs to nearer
    edges, and the front edge owns shared geometry.  Intervals are
    closed; an endpoint that merely touches the profile belongs to the
    adjacent visible part (so consecutive terrain edges meeting at a
    shared visible vertex each report a part reaching that vertex).
    """
    if seg.is_vertical:
        return _visible_vertical(seg, env, eps)

    lo, hi = env.pieces_overlapping(seg.y1, seg.y2)
    acc = _PartAccumulator(eps)
    crossings: list[tuple[float, float]] = []
    ops = 0

    cursor = seg.y1
    for idx in range(lo, hi):
        piece = env.pieces[idx]
        # Gap before this piece.
        gap_end = min(piece.ya, seg.y2)
        if cursor < gap_end:
            acc.add(cursor, gap_end)
            ops += 1
        u = max(cursor, piece.ya, seg.y1)
        v = min(piece.yb, seg.y2)
        if u < v:
            ops += 1
            du = seg.z_at(u) - piece.z_at(u)
            dv = seg.z_at(v) - piece.z_at(v)
            su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
            sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
            if su >= 0 and sv >= 0 and (su > 0 or sv > 0):
                acc.add(u, v)
            elif su <= 0 and sv <= 0:
                pass  # hidden (or coincident) throughout
            else:
                t = du / (du - dv)
                w = u + t * (v - u)
                w = min(max(w, u), v)
                if su > 0:
                    acc.add(u, w)
                else:
                    acc.add(w, v)
                if u < w < v:
                    crossings.append((w, seg.z_at(w)))
        cursor = max(cursor, v) if u < v else max(cursor, gap_end)
    if cursor < seg.y2:
        acc.add(cursor, seg.y2)
        ops += 1

    # A segment with zero visible width (a touch point) is reported
    # hidden: drop degenerate parts produced by boundary clamping.
    parts = [p for p in acc.parts if p.width > eps]
    return VisibilityResult(parts, crossings, max(ops, 1))


def _visible_vertical(
    seg: ImageSegment, env: Envelope, eps: float
) -> VisibilityResult:
    """Point query for a vertically-projected edge: the edge is visible
    iff its top endpoint rises above the profile at its ``y``."""
    zenv = env.value_at(seg.y1)
    if zenv == NEG_INF or seg.top > zenv + eps:
        return VisibilityResult(
            [VisiblePart(seg.y1, seg.y1)], [], 1
        )
    return VisibilityResult([], [], 1)
