"""Flat-native incremental profile: sequential inserts without tuple copies.

The tuple-based :func:`repro.envelope.splice.insert_segment` rebuilds
the whole profile on every edge (``env.pieces[:lo] + merged +
env.pieces[hi:]`` plus a fresh :class:`~repro.envelope.chain.Envelope`
with its ``_starts`` cache), so each insert costs Θ(m) in Python-object
copying even when the overlapped window is a single piece — the ``ops``
counter reports output-sensitive work while the wall clock is
quadratic in the profile size.

:class:`FlatProfile` keeps the live profile as structure-of-arrays
float buffers across a whole sequential run.  Each
:func:`insert_segment_flat` does

1. *locate* — two ``searchsorted`` calls replicating
   :meth:`Envelope.pieces_overlapping` bit for bit;
2. *fast-path classification* — a gap-free covering window whose
   lowest endpoint safely clears the segment's top is provably
   all-hidden (no sweep at all); a segment whose bottom safely clears
   the window's highest endpoint is provably fully visible and its
   merged window is the segment plus boundary clips;
3. *fused visibility+merge sweep* — everything else takes one pass of
   :mod:`repro.envelope.flat_fused` over the window, producing the
   visible parts, the crossings *and* the merged output pieces from a
   single set of line evaluations: the scalar fused loop below
   :data:`repro.envelope.engine.FLAT_FUSED_CUTOFF` overlapped pieces,
   the vectorized fused kernel on a **zero-copy window view** above
   it;
4. *splice* — write the merged window back into the profile.  On the
   immutable :class:`FlatProfile` this is an ``np.concatenate`` of the
   head view, the merged window and the tail view per field (a fresh
   allocation each insert); on the packed single-buffer
   :class:`~repro.envelope.packed.PackedProfile` (the default live
   layout, gated by
   :data:`repro.envelope.engine.USE_PACKED_PROFILE`) it is an
   **in-place** edit — at most one ``memmove``-style slice shift of
   the cheaper of head/tail into the buffer's slack plus the window
   write, zero moves when the piece count is unchanged, amortized-
   doubling growth when the slack runs out.

The pre-fusion cascade of PR 2/3 — a visibility dispatch
(:mod:`repro.envelope.flat_visibility` above
:data:`~repro.envelope.engine.FLAT_VISIBILITY_CUTOFF`, an inlined
scalar scan below) followed by a *separate* merge dispatch — remains
behind :data:`USE_FUSED_INSERT` as the measured ablation, and is the
live path for synthetic (negative-source) pieces, whose builder
coalescing rule the fused kernels do not implement.

Conversion to/from the scalar :class:`Envelope` happens only at run
boundaries.  Parity contract: for every insert sequence the profile
pieces, per-edge :class:`VisibilityResult` (parts, crossings, ops) and
total ``ops`` are identical to the ``engine="python"`` reference path —
``tests/test_envelope_flat_splice.py``, ``tests/test_envelope_flat_fused.py``
and the incremental-run fixtures in
``tests/test_envelope_flat_visibility.py`` enforce this on adversarial
inputs.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

import repro.envelope.engine as _engine
from repro.envelope import _ccore
from repro.envelope.chain import Envelope, Piece
from repro.envelope.flat import FlatEnvelope, _tuples_to_matrix, merge_envelopes_flat
from repro.envelope.merge import merge_envelopes
from repro.envelope.visibility import VisibilityResult, VisiblePart
from repro.errors import KernelFault
from repro.geometry.primitives import EPS, NEG_INF
from repro.geometry.segments import ImageSegment
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "FlatProfile",
    "FlatInsertResult",
    "insert_segment_flat",
    "USE_FUSED_INSERT",
    "USE_SCALAR_FASTPATHS",
    "USE_COMPILED_INSERT",
]

_F = np.float64
_I = np.int64

#: Ablation switch for the fused visibility+merge window kernel of
#: :mod:`repro.envelope.flat_fused` (the bench toggles it to measure
#: the fused-vs-two-pass delta; both paths produce identical results).
USE_FUSED_INSERT = True

#: Ablation switch for the scalar small-window fast-path predicates of
#: :func:`_insert_fused_small`.  ``False`` restores the PR-4 shape —
#: array-reduction hidden/fully-visible checks on every window, then
#: the scalar fused sweep below the cutoff — which, combined with a
#: :class:`FlatProfile`, is exactly the baseline the
#: ``sequential-packed-ablation`` bench rows measure against.  Both
#: settings produce identical results (the predicates are
#: float-for-float the same).
USE_SCALAR_FASTPATHS = True

#: The compiled fused-insert core (:mod:`repro.envelope._ccore`): one
#: C call per insert doing locate + fused sweep + in-place packed
#: splice, collapsing the whole cutoff cascade for
#: :class:`~repro.envelope.packed.PackedProfile` inserts of any window
#: size.  Defaults on when the optional extension compiled at install
#: time (``REPRO_COMPILED=0`` is the env ablation); ``False`` — or a
#: no-compiler install — runs the scalar/vectorized cascade below,
#: which is bit-exact by the parity contract.
USE_COMPILED_INSERT = _ccore.COMPILED_DEFAULT

#: Lazily-bound fused kernel module (resolving it through the import
#: machinery on every insert costs ~0.5µs in the Python-loop-bound
#: small-window regime; ``flat_fused`` imports from this module, so
#: the binding cannot happen at import time).  The module object — not
#: the functions — is cached so test monkeypatching stays visible.
_fused_mod = None


def _get_fused_mod():
    global _fused_mod
    if _fused_mod is None:
        import repro.envelope.flat_fused as _fused_mod_imported

        _fused_mod = _fused_mod_imported
    return _fused_mod


class FlatProfile(FlatEnvelope):
    """A live upper profile held as flat arrays across many inserts.

    Same invariants and buffers as :class:`FlatEnvelope`; the subclass
    adds the locate/materialise/splice operations the incremental
    sequential algorithm needs.  Instances of *this* class are
    immutable by convention — :meth:`FlatEnvelope.splice` returns a
    new profile sharing no mutable state with the old one (the
    head/tail contents are copied by the concatenate), and stays
    closed under the subclass:

    >>> prof = FlatProfile.empty().splice(
    ...     0, 0, [0.0], [1.0], [2.0], [1.0], [7]
    ... )
    >>> grown = prof.splice(1, 1, [2.0], [4.0], [5.0], [4.0], [9])
    >>> grown is prof, type(grown).__name__, grown.size
    (False, 'FlatProfile', 2)
    >>> [p.source for p in grown.to_envelope().pieces]
    [7, 9]

    The packed subclass (:class:`repro.envelope.packed.PackedProfile`,
    the default live layout for sequential runs) overrides ``splice``
    to edit one shared buffer **in place** and return ``self`` — same
    call shape, so :func:`insert_segment_flat` is layout-agnostic, but
    previously-derived window views become stale; see the packed
    module's mutability contract.
    """

    __slots__ = ()

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "FlatProfile":
        z = np.empty(0, _F)
        return FlatProfile(z, z, z, z, np.empty(0, _I))

    @staticmethod
    def from_envelope(env: Envelope) -> "FlatProfile":
        flat = FlatEnvelope.from_pieces(env.pieces)
        return FlatProfile(flat.ya, flat.za, flat.yb, flat.zb, flat.source)

    # -- scalar-parity queries ---------------------------------------

    def value_at(self, y: float) -> float:
        """Profile height at ``y`` — exact scalar replica of
        :meth:`Envelope.value_at` (same bisection, same ``z_at``
        arithmetic), used by the vertical point queries."""
        n = len(self.ya)
        if n == 0:
            return NEG_INF
        i = int(np.searchsorted(self.ya, y, side="right")) - 1
        best = NEG_INF
        if i >= 0:
            pya = float(self.ya[i])
            pyb = float(self.yb[i])
            if pya <= y <= pyb:
                best = _line_z(pya, float(self.za[i]), pyb, float(self.zb[i]), y)
            if i >= 1 and float(self.yb[i - 1]) == y:
                v = float(self.zb[i - 1])
                if v > best:
                    best = v
        if i + 1 < n and float(self.ya[i + 1]) == y:
            v = float(self.za[i + 1])
            if v > best:
                best = v
        return best

    # -- window materialisation ---------------------------------------

    def window_lists(self, lo: int, hi: int) -> tuple[list, list, list, list]:
        """``(ya, za, yb, zb)`` plain-float lists of pieces[lo:hi] —
        one bulk ``tolist`` per field, for the inlined scalar scans."""
        return (
            self.ya[lo:hi].tolist(),
            self.za[lo:hi].tolist(),
            self.yb[lo:hi].tolist(),
            self.zb[lo:hi].tolist(),
        )

    def window_z_min(self, lo: int, hi: int) -> float:
        """min over both z columns of pieces ``[lo, hi)`` (the hidden
        fast path's reduction; the packed layout does it in one
        strided 2D reduction)."""
        return min(self.za[lo:hi].min(), self.zb[lo:hi].min())

    def window_z_max(self, lo: int, hi: int) -> float:
        """max analogue of :meth:`window_z_min` (fully-visible fast
        path)."""
        return max(self.za[lo:hi].max(), self.zb[lo:hi].max())

    def window_pieces(self, lo: int, hi: int) -> list[Piece]:
        """pieces[lo:hi] as scalar :class:`Piece` tuples (fallback
        paths only)."""
        return list(
            map(
                Piece._make,
                zip(
                    self.ya[lo:hi].tolist(),
                    self.za[lo:hi].tolist(),
                    self.yb[lo:hi].tolist(),
                    self.zb[lo:hi].tolist(),
                    self.source[lo:hi].tolist(),
                ),
            )
        )


class FlatInsertResult(NamedTuple):
    """Flat-native analogue of :class:`repro.envelope.splice.InsertResult`.

    ``profile`` is the updated :class:`FlatProfile` (the *same* object
    when the segment was hidden or vertical — no splice performed);
    ``visibility`` and ``ops`` carry exactly the values the reference
    :func:`~repro.envelope.splice.insert_segment` would report.
    """

    profile: FlatProfile
    visibility: VisibilityResult
    ops: int


def _line_z(ya: float, za: float, yb: float, zb: float, y: float) -> float:
    """Supporting-line height at ``y`` — the exact float arithmetic of
    ``Piece.z_at`` / ``ImageSegment.z_at`` (endpoint shortcuts, then
    ``lerp`` with its ``t == 0/1`` shortcuts) for non-degenerate spans."""
    if y == ya:
        return za
    if y == yb:
        return zb
    t = (y - ya) / (yb - ya)
    if t == 0.0:
        return za
    if t == 1.0:
        return zb
    return za + (zb - za) * t


def _acc_add(parts: list[list[float]], ya: float, yb: float, eps: float) -> None:
    """``_PartAccumulator.add`` over mutable ``[ya, yb]`` rows."""
    if yb < ya:
        return
    if parts:
        last = parts[-1]
        if ya <= last[1] + eps:
            if yb > last[1]:
                last[1] = yb
            return
    parts.append([ya, yb])


def _scan_window(
    y1: float,
    z1: float,
    y2: float,
    z2: float,
    wya: Sequence[float],
    wza: Sequence[float],
    wyb: Sequence[float],
    wzb: Sequence[float],
    eps: float,
) -> VisibilityResult:
    """Visible parts of a non-vertical segment against the window of
    profile pieces overlapping its span — an exact inline of
    :func:`repro.envelope.visibility.visible_parts` over plain floats
    (every piece of the window overlaps ``(y1, y2)`` by construction,
    so the ``pieces_overlapping`` pre-pass is the identity here)."""
    parts: list[list[float]] = []
    crossings: list[tuple[float, float]] = []
    ops = 0
    cursor = y1
    line_z = _line_z  # local binding: called four times per piece
    for j in range(len(wya)):
        pya = wya[j]
        pyb = wyb[j]
        gap_end = pya if pya < y2 else y2
        if cursor < gap_end:
            _acc_add(parts, cursor, gap_end, eps)
            ops += 1
        u = max(cursor, pya, y1)
        v = pyb if pyb < y2 else y2
        if u < v:
            ops += 1
            pza = wza[j]
            pzb = wzb[j]
            du = line_z(y1, z1, y2, z2, u) - line_z(pya, pza, pyb, pzb, u)
            dv = line_z(y1, z1, y2, z2, v) - line_z(pya, pza, pyb, pzb, v)
            su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
            sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
            if su >= 0 and sv >= 0 and (su > 0 or sv > 0):
                _acc_add(parts, u, v, eps)
            elif su <= 0 and sv <= 0:
                pass  # hidden (or coincident) throughout
            else:
                t = du / (du - dv)
                w = u + t * (v - u)
                w = min(max(w, u), v)
                if su > 0:
                    _acc_add(parts, u, w, eps)
                else:
                    _acc_add(parts, w, v, eps)
                if u < w < v:
                    crossings.append((w, _line_z(y1, z1, y2, z2, w)))
        cursor = max(cursor, v) if u < v else max(cursor, gap_end)
    if cursor < y2:
        _acc_add(parts, cursor, y2, eps)
        ops += 1
    out = [VisiblePart(a, b) for a, b in parts if b - a > eps]
    return VisibilityResult(out, crossings, max(ops, 1))


def _visible_vertical_flat(
    profile: FlatProfile, seg: ImageSegment, eps: float
) -> VisibilityResult:
    """``_visible_vertical`` on flat arrays: the edge is visible iff its
    top endpoint rises above the profile at its ``y``."""
    zenv = profile.value_at(seg.y1)
    top = seg.z1 if seg.z1 >= seg.z2 else seg.z2
    if zenv == NEG_INF or top > zenv + eps:
        return VisibilityResult([VisiblePart(seg.y1, seg.y1)], [], 1)
    return VisibilityResult([], [], 1)


def _merge_window_with_segment(
    wya: list,
    wza: list,
    wyb: list,
    wzb: list,
    wsrc: list,
    y1: float,
    z1: float,
    y2: float,
    z2: float,
    src: int,
    eps: float,
) -> tuple[list, list, list, list, list, int]:
    """Merge the window pieces with one segment — an exact inline of
    :func:`repro.envelope.merge.merge_envelopes` (ties prefer the
    window, ``record_crossings=False``) specialised to a single-piece
    right side and real (``>= 0``) sources, emitting plain-float piece
    field lists ready to splice.  Returns
    ``(ya, za, yb, zb, source, ops)``."""
    k = len(wya)
    if k == 0:
        # merge_envelopes' empty-side fast path: the other side
        # verbatim, ops = its piece count.
        return [y1], [z1], [y2], [z2], [src], 1

    # Union breakpoints: the window's interleaved endpoint stream is
    # already sorted; two-pointer merge with [y1, y2] (the exact
    # ``envelope_breakpoints`` dedup rules).
    xs: list[float] = []
    for j in range(k):
        xs.append(wya[j])
        xs.append(wyb[j])
    ys = [y1, y2]
    bounds: list[float] = []
    i = j = 0
    nx, ny = len(xs), 2
    while i < nx and j < ny:
        x, y = xs[i], ys[j]
        if x <= y:
            if not bounds or bounds[-1] != x:
                bounds.append(x)
            i += 1
            if x == y:
                j += 1
        else:
            if not bounds or bounds[-1] != y:
                bounds.append(y)
            j += 1
    for r in range(i, nx):
        if not bounds or bounds[-1] != xs[r]:
            bounds.append(xs[r])
    for r in range(j, ny):
        if not bounds or bounds[-1] != ys[r]:
            bounds.append(ys[r])

    oya: list[float] = []
    oza: list[float] = []
    oyb: list[float] = []
    ozb: list[float] = []
    osrc: list[int] = []

    def add(pya: float, pza: float, pyb: float, pzb: float, s: int) -> None:
        # EnvelopeBuilder.add for real sources: coalesce contiguous
        # same-source pieces whose heights agree within eps.
        if pya >= pyb:
            return
        if osrc and osrc[-1] == s and oyb[-1] == pya and abs(ozb[-1] - pza) <= eps:
            oyb[-1] = pyb
            ozb[-1] = pzb
            return
        oya.append(pya)
        oza.append(pza)
        oyb.append(pyb)
        ozb.append(pzb)
        osrc.append(s)

    ops = 0
    ia = 0
    for idx in range(len(bounds) - 1):
        u = bounds[idx]
        v = bounds[idx + 1]
        if u >= v:
            continue
        ops += 1
        while ia < k and wyb[ia] <= u:
            ia += 1
        pa = ia < k and wya[ia] <= u and v <= wyb[ia]
        pb = y1 <= u and v <= y2
        if not pa and not pb:
            continue
        if not pb:
            sa = wsrc[ia]
            add(
                u,
                _line_z(wya[ia], wza[ia], wyb[ia], wzb[ia], u),
                v,
                _line_z(wya[ia], wza[ia], wyb[ia], wzb[ia], v),
                sa,
            )
            continue
        if not pa:
            add(u, _line_z(y1, z1, y2, z2, u), v, _line_z(y1, z1, y2, z2, v), src)
            continue

        pya, pza, pyb, pzb = wya[ia], wza[ia], wyb[ia], wzb[ia]
        sa = wsrc[ia]
        pa_u = _line_z(pya, pza, pyb, pzb, u)
        pa_v = _line_z(pya, pza, pyb, pzb, v)
        pb_u = _line_z(y1, z1, y2, z2, u)
        pb_v = _line_z(y1, z1, y2, z2, v)
        du = pa_u - pb_u
        dv = pa_v - pb_v
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)

        if su >= 0 and sv >= 0:
            add(u, pa_u, v, pa_v, sa)
        elif su <= 0 and sv <= 0:
            add(u, pb_u, v, pb_v, src)
        else:
            t = du / (du - dv)
            w = u + t * (v - u)
            if w <= u or w >= v:  # numeric clamp: treat as one-sided
                if su > 0 or sv < 0:
                    add(u, pa_u, v, pa_v, sa)
                else:
                    add(u, pb_u, v, pb_v, src)
                continue
            zw = _line_z(pya, pza, pyb, pzb, w)
            zw_b = _line_z(y1, z1, y2, z2, w)
            if su > 0:
                add(u, pa_u, w, zw, sa)
                add(w, zw_b, v, pb_v, src)
            else:
                add(u, pb_u, w, zw_b, src)
                add(w, zw, v, pa_v, sa)

    return oya, oza, oyb, ozb, osrc, ops


def _insert_fused(
    profile: FlatProfile,
    seg: ImageSegment,
    lo: int,
    hi: int,
    win: int,
    eps: float,
    fused_cutoff: "int | None" = None,
    scalar_fastpaths: "bool | None" = None,
) -> "FlatInsertResult | None":
    """The fused visibility+merge insert (one sweep instead of a
    visibility pass plus a merge pass; see
    :mod:`repro.envelope.flat_fused`).  Returns ``None`` when the
    window holds synthetic (negative-source) pieces — those coalesce
    on a different builder rule and take the unfused cascade."""
    fused = _get_fused_mod()

    y1, z1, y2, z2 = seg.y1, seg.z1, seg.y2, seg.z2
    if win == 0:
        # Empty window: one trailing scan interval, one merge
        # interval (the segment verbatim) — unless the span is
        # eps-degenerate, which the scan reports hidden.
        if y2 - y1 > eps:
            vis = VisibilityResult([VisiblePart(y1, y2)], [], 1)
            new = profile.splice(
                lo, hi, [y1], [z1], [y2], [z2], [seg.source]
            )
            return FlatInsertResult(new, vis, 2)
        return FlatInsertResult(profile, VisibilityResult([], [], 1), 1)

    if fused_cutoff is None:
        fused_cutoff = _engine.FLAT_FUSED_CUTOFF
    if scalar_fastpaths is None:
        scalar_fastpaths = USE_SCALAR_FASTPATHS
    small = win < fused_cutoff
    if small and scalar_fastpaths:
        return _insert_fused_small(
            profile, seg, lo, hi, win, y1, z1, y2, z2, eps, fused
        )

    # Hidden-window fast path.  When the window has no gaps, covers
    # the whole span, and its lowest endpoint clears the segment's top
    # endpoint by a safely-more-than-eps margin, every elementary
    # interval of the scan takes the hidden branch: the result is
    # exactly ``VisibilityResult([], [], win)`` and the profile is
    # untouched.  The margin adds a relative guard so lerp rounding
    # (a few ulps) can never flip a sign the scan would compute
    # differently — when unsure, fall through to the exact sweep.
    # (Below the fused cutoff the same predicates run as one scalar
    # pass over the window lists in ``_insert_fused_small`` — the
    # fixed overhead of these array reductions is the dominant
    # per-insert cost in the small-window regime.)
    top = z1 if z1 >= z2 else z2
    za_lo = profile.za[lo]
    if top < za_lo:  # quick reject before the reductions
        minz = profile.window_z_min(lo, hi)
        if (
            minz - top > eps + 1e-12 * (abs(minz) + abs(top) + 1.0)
            and profile.ya[lo] <= y1
            and profile.yb[hi - 1] >= y2
            and (
                win == 1
                or bool(
                    (profile.ya[lo + 1 : hi] == profile.yb[lo : hi - 1]).all()
                )
            )
        ):
            return FlatInsertResult(
                profile, VisibilityResult([], [], win), win
            )
    else:
        # Fully-visible fast path: when the segment's *bottom* clears
        # the window's highest endpoint by a safely-more-than-eps
        # margin, every pair is segment-dominated: the scan yields the
        # single part (y1, y2) and no crossings, and the merged window
        # collapses to (head clip of the first piece?) + the segment
        # verbatim + (tail clip of the last piece?) — the segment
        # emissions coalesce exactly because consecutive intervals
        # re-evaluate the same supporting line at the same bound.
        bot = z1 if z1 <= z2 else z2
        if bot > za_lo and y2 - y1 > eps:
            maxz = profile.window_z_max(lo, hi)
            if bot - maxz > eps + 1e-12 * (abs(maxz) + abs(bot) + 1.0):
                ya0 = float(profile.ya[lo])
                yb_l = float(profile.yb[hi - 1])
                gaps = (
                    int(
                        (
                            profile.yb[lo : hi - 1]
                            < profile.ya[lo + 1 : hi]
                        ).sum()
                    )
                    if win > 1
                    else 0
                )
                vis_ops = win + gaps + (y1 < ya0) + (y2 > yb_l)
                vis = VisibilityResult(
                    [VisiblePart(y1, y2)], [], vis_ops
                )
                merge_ops = win + gaps + (ya0 != y1) + (yb_l != y2)
                oya = [y1]
                oza = [z1]
                oyb = [y2]
                ozb = [z2]
                osrc = [seg.source]
                if ya0 < y1:
                    oya.insert(0, ya0)
                    oza.insert(0, float(profile.za[lo]))
                    oyb.insert(0, y1)
                    ozb.insert(
                        0,
                        _line_z(
                            ya0,
                            float(profile.za[lo]),
                            float(profile.yb[lo]),
                            float(profile.zb[lo]),
                            y1,
                        ),
                    )
                    osrc.insert(0, int(profile.source[lo]))
                if yb_l > y2:
                    oya.append(y2)
                    oza.append(
                        _line_z(
                            float(profile.ya[hi - 1]),
                            float(profile.za[hi - 1]),
                            yb_l,
                            float(profile.zb[hi - 1]),
                            y2,
                        )
                    )
                    oyb.append(yb_l)
                    ozb.append(float(profile.zb[hi - 1]))
                    osrc.append(int(profile.source[hi - 1]))
                new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
                return FlatInsertResult(new, vis, vis_ops + merge_ops)

    if small:
        # Only reachable with USE_SCALAR_FASTPATHS off — the PR-4
        # ablation shape: array fast paths above, scalar sweep here.
        wsrc = profile.source[lo:hi].tolist()
        if min(wsrc) < 0:
            return None
        wya, wza, wyb, wzb = profile.window_lists(lo, hi)
        if _fi.ARMED or _guard.GUARDED_CHECK_ALL:
            res = _checked_fused_scalar(
                fused, wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, seg.source, eps
            )
        else:
            res = fused.fused_insert_window(
                wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, seg.source, eps
            )
        if res.merged is None:  # fully hidden: no splice
            return FlatInsertResult(profile, res.visibility, res.visibility.ops)
        oya, oza, oyb, ozb, osrc = res.merged
        new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
        return FlatInsertResult(
            new, res.visibility, res.visibility.ops + res.merge_ops
        )

    wsrc_arr = profile.source[lo:hi]
    if bool((wsrc_arr < 0).any()):
        return None
    res = fused.fused_insert_window_flat(
        profile.window(lo, hi),
        y1,
        z1,
        y2,
        z2,
        seg.source,
        eps,
        dest=profile,
        dest_range=(lo, hi),
    )
    if res.profile is not None:
        # The kernel spliced the merged window straight into the
        # profile (in place on the packed layout).
        return FlatInsertResult(
            res.profile, res.visibility, res.visibility.ops + res.merge_ops
        )
    # Fully hidden: no splice, profile shared.
    return FlatInsertResult(profile, res.visibility, res.visibility.ops)


def _insert_fused_small(
    profile: FlatProfile,
    seg: ImageSegment,
    lo: int,
    hi: int,
    win: int,
    y1: float,
    z1: float,
    y2: float,
    z2: float,
    eps: float,
    fused,
) -> "FlatInsertResult | None":
    """The small-window (< ``FLAT_FUSED_CUTOFF``) fused insert.

    One bulk :meth:`FlatProfile.window_lists` feeds the
    hidden/fully-visible fast-path predicates *and* the scalar fused
    sweep, so the whole insert runs on plain Python floats — the array
    reductions the large-window path uses cost more in fixed dispatch
    overhead than the entire scalar pass at these sizes.  The
    predicates are float-for-float the same as the large-window
    reductions (``tolist`` is lossless), so the branch taken — and
    therefore every result — is identical.
    """
    wya, wza, wyb, wzb = profile.window_lists(lo, hi)
    za0 = wza[0]
    top = z1 if z1 >= z2 else z2
    if top < za0:
        # Hidden-window fast path: gap-free covering window whose
        # lowest endpoint safely clears the segment's top (same
        # margin guard as the vectorized path).
        if wya[0] <= y1 and wyb[win - 1] >= y2:
            minz = za0 if za0 <= wzb[0] else wzb[0]
            prev_yb = wyb[0]
            gap_free = True
            for j in range(1, win):
                if wya[j] != prev_yb:
                    gap_free = False
                    break
                prev_yb = wyb[j]
                if wza[j] < minz:
                    minz = wza[j]
                if wzb[j] < minz:
                    minz = wzb[j]
            if gap_free and minz - top > eps + 1e-12 * (
                abs(minz) + abs(top) + 1.0
            ):
                return FlatInsertResult(
                    profile, VisibilityResult([], [], win), win
                )
    else:
        # Fully-visible fast path: the segment's bottom safely clears
        # the window's highest endpoint; merged window = [head clip?]
        # + segment + [tail clip?].
        bot = z1 if z1 <= z2 else z2
        if bot > za0 and y2 - y1 > eps:
            maxz = za0 if za0 >= wzb[0] else wzb[0]
            prev_yb = wyb[0]
            gaps = 0
            for j in range(1, win):
                if prev_yb < wya[j]:
                    gaps += 1
                prev_yb = wyb[j]
                if wza[j] > maxz:
                    maxz = wza[j]
                if wzb[j] > maxz:
                    maxz = wzb[j]
            if bot - maxz > eps + 1e-12 * (abs(maxz) + abs(bot) + 1.0):
                ya0 = wya[0]
                yb_l = wyb[win - 1]
                vis_ops = win + gaps + (y1 < ya0) + (y2 > yb_l)
                vis = VisibilityResult([VisiblePart(y1, y2)], [], vis_ops)
                merge_ops = win + gaps + (ya0 != y1) + (yb_l != y2)
                oya = [y1]
                oza = [z1]
                oyb = [y2]
                ozb = [z2]
                osrc = [seg.source]
                if ya0 < y1:
                    oya.insert(0, ya0)
                    oza.insert(0, za0)
                    oyb.insert(0, y1)
                    ozb.insert(0, _line_z(ya0, za0, wyb[0], wzb[0], y1))
                    osrc.insert(0, int(profile.source[lo]))
                if yb_l > y2:
                    oya.append(y2)
                    oza.append(
                        _line_z(wya[win - 1], wza[win - 1], yb_l, wzb[win - 1], y2)
                    )
                    oyb.append(yb_l)
                    ozb.append(wzb[win - 1])
                    osrc.append(int(profile.source[hi - 1]))
                new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
                return FlatInsertResult(new, vis, vis_ops + merge_ops)

    wsrc = profile.source[lo:hi].tolist()
    if min(wsrc) < 0:
        return None
    if _fi.ARMED or _guard.GUARDED_CHECK_ALL:
        res = _checked_fused_scalar(
            fused, wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, seg.source, eps
        )
    else:
        res = fused.fused_insert_window(
            wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, seg.source, eps
        )
    if res.merged is None:  # fully hidden: no splice, profile shared
        return FlatInsertResult(profile, res.visibility, res.visibility.ops)
    oya, oza, oyb, ozb, osrc = res.merged
    new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
    return FlatInsertResult(
        new, res.visibility, res.visibility.ops + res.merge_ops
    )


def _insert_segment_flat_impl(
    profile: FlatProfile,
    seg: ImageSegment,
    eps: float,
    config=None,
) -> FlatInsertResult:
    """The kernel cascade behind :func:`insert_segment_flat` (fused
    sweep / vectorized visibility / flat merge, cutoff-dispatched).

    ``config`` (:class:`repro.config.HsrConfig`) overrides the module
    toggles/cutoffs for this call; ``None`` reads the live globals —
    the documented defaults, kept consultable per call so ablations
    (and tests) that set them still apply.
    """
    if seg.is_vertical:
        vis = _visible_vertical_flat(profile, seg, eps)
        return FlatInsertResult(profile, vis, vis.ops)

    if config is None:
        fused_on = USE_FUSED_INSERT
        compiled_on = USE_COMPILED_INSERT
        vis_cutoff = _engine.FLAT_VISIBILITY_CUTOFF
        merge_cutoff = _engine.FLAT_MERGE_CUTOFF
        fused_cutoff = scalar_fp = None
    else:
        fused_on = config.fused_insert()
        compiled_on = config.compiled_insert()
        vis_cutoff = config.visibility_cutoff()
        merge_cutoff = config.merge_cutoff()
        fused_cutoff = config.fused_cutoff()
        scalar_fp = config.scalar_fastpaths()

    if (
        compiled_on
        and fused_on
        and seg.source >= 0
        and type(profile).__name__ == "PackedProfile"
    ):
        # The compiled core does its own locate — dispatch before the
        # Python-side binary search so the hot path pays exactly one.
        res = _insert_compiled(profile, seg, eps)
        if res is not None:
            return res
        # Declined (synthetic window / quarantine / recorded fault):
        # the cascade below recomputes from unmutated state.

    y1, z1, y2, z2 = seg.y1, seg.z1, seg.y2, seg.z2
    lo, hi = profile.pieces_overlapping(y1, y2)
    win = hi - lo

    if fused_on and seg.source >= 0:
        res = _insert_fused(
            profile, seg, lo, hi, win, eps, fused_cutoff, scalar_fp
        )
        if res is not None:
            return res

    wlists = None
    if win >= vis_cutoff:
        vis = _engine.visibility_dispatch(
            seg, None, eps=eps, engine="numpy", window=profile.window(lo, hi)
        )
    else:
        wlists = profile.window_lists(lo, hi)
        vis = _scan_window(y1, z1, y2, z2, *wlists, eps)
    if not vis.parts:  # fully hidden: no splice, profile shared
        return FlatInsertResult(profile, vis, vis.ops)

    if win + 1 >= merge_cutoff:
        res = _guarded_flat_merge(profile, seg, lo, hi, vis, eps)
        if res is not None:
            return res
        # Recorded merge_dispatch fault (or quarantine): fall through
        # to the scalar window merge, which is bit-exact with the
        # kernel in both pieces and ops.

    wsrc = profile.source[lo:hi].tolist()
    if seg.source < 0 or min(wsrc, default=0) < 0:
        # Synthetic (source -1) pieces coalesce on EnvelopeBuilder's
        # sequential slope rule; take the reference kernel on a
        # materialised window (rare outside tests).
        local = Envelope(profile.window_pieces(lo, hi))
        mres = merge_envelopes(
            local, Envelope.from_segment(seg), eps=eps, record_crossings=False
        )
        mat = _tuples_to_matrix(mres.envelope.pieces)
        new = profile.splice(
            lo, hi, mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3], mat[:, 4].astype(_I)
        )
        return FlatInsertResult(new, vis, vis.ops + mres.ops)

    if wlists is None:
        wlists = profile.window_lists(lo, hi)
    oya, oza, oyb, ozb, osrc, mops = _merge_window_with_segment(
        *wlists, wsrc, y1, z1, y2, z2, seg.source, eps
    )
    new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
    return FlatInsertResult(new, vis, vis.ops + mops)


def _insert_compiled(
    profile, seg: ImageSegment, eps: float
) -> "FlatInsertResult | None":
    """Guard site ``compiled_insert``: the one-call C hot path.

    Returns the completed insert (profile mutated in place, identity
    preserved — the packed splice contract), or ``None`` when the core
    declines (synthetic sources in the window), the site is
    quarantined, or a fault was recorded — in every ``None`` case
    nothing was committed, so the caller's cascade recomputes the
    identical insert from unmutated state.

    Under an armed injection plan (or ``REPRO_GUARD_CHECK_ALL``) the
    call splits into compute + Python-side commit
    (:func:`_checked_compiled`) so the merged window crosses the guard
    checks — and the ``packed_splice`` site — exactly like every other
    kernel edge.
    """
    if not _guard.GUARDS_ENABLED:
        res = _ccore.insert_packed(profile, seg, eps)
        if res is None:
            return None
        vis, ops = res
        return FlatInsertResult(profile, vis, ops)
    if _guard.ANY_QUARANTINED and _guard.is_quarantined("compiled_insert"):
        return None
    if _fi.ARMED and _fi.armed_site() != "compiled_insert":
        # A plan targets a cascade-internal site (fused_insert,
        # merge_dispatch, packed_splice, ...): stand aside so the
        # armed boundary actually runs — injection semantics stay
        # identical to a no-compiler install.
        return None
    try:
        if _fi.ARMED or _guard.GUARDED_CHECK_ALL:
            return _checked_compiled(profile, seg, eps)
        res = _ccore.insert_packed(profile, seg, eps)
        if res is None:
            return None
        vis, ops = res
        return FlatInsertResult(profile, vis, ops)
    except KernelFault:
        raise
    except Exception as exc:
        _guard.handle_fault(
            getattr(exc, "site", None) or "compiled_insert", exc
        )
        return None


def _checked_compiled(
    profile, seg: ImageSegment, eps: float
) -> "FlatInsertResult | None":
    """Compiled core under an armed injection plan (or
    ``REPRO_GUARD_CHECK_ALL``): trip the ``compiled_insert`` site, run
    the sweep with ``commit=0`` (no mutation), corrupt the merged
    lists if a plan targets them, validate visibility and merged
    window, then commit through :meth:`PackedProfile.splice` — which
    keeps the ``packed_splice`` guard site live under the compiled
    path."""
    if _fi.ARMED:
        _fi.trip("compiled_insert")
    res = _ccore.compute(profile, seg, eps)
    if res is None:
        return None
    lo, hi, vis, merged, ops = res
    if _fi.ARMED and merged is not None:
        merged = _fi.corrupt_merged_lists("compiled_insert", merged)
    _guard.check_visibility("compiled_insert", vis, seg.y1, seg.y2, eps)
    if merged is None:  # hidden: no splice, profile shared
        return FlatInsertResult(profile, vis, ops)
    oya, oza, oyb, ozb, osrc = merged
    _guard.check_merged_lists("compiled_insert", oya, oza, oyb, ozb)
    new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
    return FlatInsertResult(new, vis, ops)


def _checked_fused_scalar(
    fused, wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, src, eps
):
    """Scalar fused kernel call under an armed injection plan (or
    ``REPRO_GUARD_CHECK_ALL``): trip the ``fused_insert`` site, corrupt
    the freshly-built merged window if a plan targets it, and validate
    the output *before* the caller commits it with a splice."""
    if _fi.ARMED:
        _fi.trip("fused_insert")
    res = fused.fused_insert_window(
        wya, wza, wyb, wzb, wsrc, y1, z1, y2, z2, src, eps
    )
    if _fi.ARMED and res.merged is not None:
        merged = _fi.corrupt_merged_lists("fused_insert", res.merged)
        if merged is not res.merged:
            res = res._replace(merged=merged)
    _guard.check_visibility("fused_insert", res.visibility, y1, y2, eps)
    if res.merged is not None:
        oya, oza, oyb, ozb, _osrc = res.merged
        _guard.check_merged_lists("fused_insert", oya, oza, oyb, ozb)
    return res


def _guarded_flat_merge(
    profile: FlatProfile,
    seg: ImageSegment,
    lo: int,
    hi: int,
    vis: VisibilityResult,
    eps: float,
) -> "FlatInsertResult | None":
    """Guard site ``merge_dispatch`` for the wide-window splice merge.

    Returns the completed insert, or ``None`` when the site is
    quarantined or the kernel faulted (recorded) — the caller falls
    through to the scalar window merge, which produces the identical
    window and ``ops`` by the parity contract.  The post-condition
    check runs on the kernel's freshly-built window *before* the
    splice commits it, so the scalar retry recomputes from unmutated
    state.
    """
    if not _guard.GUARDS_ENABLED:
        res = merge_envelopes_flat(
            profile.window(lo, hi),
            FlatEnvelope.from_segment(seg),
            eps=eps,
            record_crossings=False,
        )
        m = res.envelope
        new = profile.splice(lo, hi, m.ya, m.za, m.yb, m.zb, m.source)
        return FlatInsertResult(new, vis, vis.ops + res.ops)
    if _guard.ANY_QUARANTINED and _guard.is_quarantined("merge_dispatch"):
        return None
    try:
        if _fi.ARMED:
            _fi.trip("merge_dispatch")
        res = merge_envelopes_flat(
            profile.window(lo, hi),
            FlatEnvelope.from_segment(seg),
            eps=eps,
            record_crossings=False,
        )
        m = res.envelope
        if _fi.ARMED:
            m = _fi.corrupt_flat("merge_dispatch", m)
        _guard.check_flat("merge_dispatch", m.ya, m.za, m.yb, m.zb)
        new = profile.splice(lo, hi, m.ya, m.za, m.yb, m.zb, m.source)
        return FlatInsertResult(new, vis, vis.ops + res.ops)
    except KernelFault:
        raise
    except Exception as exc:
        _guard.handle_fault(
            getattr(exc, "site", None) or "merge_dispatch", exc
        )
        return None


def _insert_reference(
    profile: FlatProfile, seg: ImageSegment, eps: float
) -> FlatInsertResult:
    """Whole-insert scalar reference path — the guard's retry target.

    The sub-cutoff cascade of the impl with every kernel (fused sweep,
    vectorized visibility, flat merge) left out: scalar scan + scalar
    window merge + splice.  Bit-exact with the impl in visible parts,
    merged pieces *and* ``ops`` by the parity contract, so a degraded
    insert is indistinguishable from a healthy one downstream.
    """
    if seg.is_vertical:
        vis = _visible_vertical_flat(profile, seg, eps)
        return FlatInsertResult(profile, vis, vis.ops)

    y1, z1, y2, z2 = seg.y1, seg.z1, seg.y2, seg.z2
    lo, hi = profile.pieces_overlapping(y1, y2)
    wlists = profile.window_lists(lo, hi)
    vis = _scan_window(y1, z1, y2, z2, *wlists, eps)
    if not vis.parts:  # fully hidden: no splice, profile shared
        return FlatInsertResult(profile, vis, vis.ops)

    wsrc = profile.source[lo:hi].tolist()
    if seg.source < 0 or min(wsrc, default=0) < 0:
        local = Envelope(profile.window_pieces(lo, hi))
        mres = merge_envelopes(
            local, Envelope.from_segment(seg), eps=eps, record_crossings=False
        )
        mat = _tuples_to_matrix(mres.envelope.pieces)
        new = profile.splice(
            lo,
            hi,
            mat[:, 0],
            mat[:, 1],
            mat[:, 2],
            mat[:, 3],
            mat[:, 4].astype(_I),
        )
        return FlatInsertResult(new, vis, vis.ops + mres.ops)

    oya, oza, oyb, ozb, osrc, mops = _merge_window_with_segment(
        *wlists, wsrc, y1, z1, y2, z2, seg.source, eps
    )
    new = profile.splice(lo, hi, oya, oza, oyb, ozb, osrc)
    return FlatInsertResult(new, vis, vis.ops + mops)


#: Insert count between periodic whole-profile validation ticks (site
#: ``profile``; detection-only — see :func:`repro.reliability.guard.
#: check_profile`).
_TICK_EVERY = 256
_tick = 0


def insert_segment_flat(
    profile: FlatProfile,
    seg: ImageSegment,
    *,
    eps: float = EPS,
    config=None,
) -> FlatInsertResult:
    """Insert ``seg`` into ``profile``; see the module docstring.

    Exact analogue of :func:`repro.envelope.splice.insert_segment`
    under ``engine="numpy"``: the same visibility/merge dispatch
    cutoffs apply (:data:`repro.envelope.engine.FLAT_VISIBILITY_CUTOFF`
    / :data:`~repro.envelope.engine.FLAT_MERGE_CUTOFF`), the same
    results and ``ops`` come out, but the profile never leaves its
    array representation.

    Runs under the guarded-dispatch envelope (site ``fused_insert``
    plus the nested ``merge_dispatch`` / ``visibility_dispatch`` /
    ``packed_splice`` sites): a kernel fault inside the cascade is
    recorded and the whole insert retried on the scalar reference
    path, bit-exact.  ``REPRO_GUARDS=0`` strips the envelope.
    """
    if (
        _engine.USE_CHUNKED_PROFILE
        and type(profile).__name__ == "PackedProfile"
        and profile.size >= _engine.CHUNKED_PROFILE_CUTOFF
    ):
        # One-time promotion to the chunked gap-buffer layout (the
        # caller re-binds to the returned profile, so the promoted
        # object rides every subsequent insert).  Name-based check:
        # ``packed`` imports this module, so it cannot be imported
        # here at module scope.
        from repro.envelope.packed import ChunkedProfile

        profile = ChunkedProfile.promote(profile)

    if not _guard.GUARDS_ENABLED:
        return _insert_segment_flat_impl(profile, seg, eps, config)

    global _tick
    _tick += 1
    tick = not _tick % _TICK_EVERY
    if _fi.ARMED and _fi.poison_profile("profile", profile):
        tick = True  # corruption committed: the tick must catch it now
    if tick:
        _guard.check_profile(profile)

    if _guard.ANY_QUARANTINED and _guard.is_quarantined("fused_insert"):
        with _fi.suppressed():
            return _insert_reference(profile, seg, eps)
    try:
        return _insert_segment_flat_impl(profile, seg, eps, config)
    except KernelFault:
        raise
    except Exception as exc:
        _guard.handle_fault(getattr(exc, "site", None) or "fused_insert", exc)
        with _fi.suppressed():
            return _insert_reference(profile, seg, eps)
