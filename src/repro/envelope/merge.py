"""Pairwise envelope merge (point-wise maximum) with crossing detection.

``merge_envelopes(a, b)`` sweeps the union of breakpoints left to
right; inside each elementary interval both inputs are linear, so the
winner either holds throughout or flips once at a computable crossing.

Crossings — points where the two envelopes transversally exchange
dominance — are the "intersections" the paper's analysis counts: every
crossing discovered during Phase 1 or Phase 2 is (potentially) a vertex
of some profile, and the total number discovered relates linearly to
the output size ``k``.
"""

from __future__ import annotations

import heapq
from typing import NamedTuple, Optional, Sequence

from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.geometry.primitives import EPS

__all__ = [
    "Crossing",
    "MergeResult",
    "merge_envelopes",
    "merge_many",
    "envelope_breakpoints",
]


class Crossing(NamedTuple):
    """A transversal crossing between two envelope pieces.

    ``front`` / ``back`` are the source edge ids of the piece that is
    above to the *left* of the crossing and to the right respectively
    — "front"/"back" naming matches the Phase-2 use where ``a`` is the
    inherited (front) profile.
    """

    y: float
    z: float
    front: int
    back: int


class MergeResult(NamedTuple):
    """Outcome of an envelope merge.

    Attributes
    ----------
    envelope:
        The point-wise maximum of the inputs.
    crossings:
        Transversal crossings discovered, in y-order.
    ops:
        Elementary intervals processed — the sequential work of the
        merge; PRAM trackers charge this as work.
    """

    envelope: Envelope
    crossings: list[Crossing]
    ops: int


def _endpoint_stream(env: Envelope) -> list[float]:
    """All piece endpoints of ``env`` in y-order.

    Within one envelope pieces are y-sorted and non-overlapping, so
    the interleaved ``[ya0, yb0, ya1, yb1, ...]`` sequence is already
    sorted — no per-envelope sort is needed.
    """
    out: list[float] = []
    for p in env.pieces:
        out.append(p.ya)
        out.append(p.yb)
    return out


def envelope_breakpoints(*envs: Envelope) -> list[float]:
    """Sorted unique piece endpoints of the given envelopes.

    Each envelope's endpoint stream is already sorted (see
    :func:`_endpoint_stream`), so the union is a linear merge — a
    two-pointer pass for the common two-envelope case, a heap merge
    for more — rather than a hash-set plus full sort.
    """
    if len(envs) == 2:
        xs = _endpoint_stream(envs[0])
        ys = _endpoint_stream(envs[1])
        out: list[float] = []
        i = j = 0
        nx, ny = len(xs), len(ys)
        while i < nx and j < ny:
            x, y = xs[i], ys[j]
            if x <= y:
                if not out or out[-1] != x:
                    out.append(x)
                i += 1
                if x == y:
                    j += 1
            else:
                if not out or out[-1] != y:
                    out.append(y)
                j += 1
        for k in range(i, nx):
            if not out or out[-1] != xs[k]:
                out.append(xs[k])
        for k in range(j, ny):
            if not out or out[-1] != ys[k]:
                out.append(ys[k])
        return out
    merged: list[float] = []
    for y in heapq.merge(*(_endpoint_stream(e) for e in envs)):
        if not merged or merged[-1] != y:
            merged.append(y)
    return merged


def _piece_at(env: Envelope, idx: int, u: float, v: float) -> Optional[Piece]:
    """The piece at index ``idx`` if it covers ``[u, v]``, else ``None``."""
    if 0 <= idx < len(env.pieces):
        p = env.pieces[idx]
        if p.ya <= u and v <= p.yb:
            return p
    return None


def merge_envelopes(
    a: Envelope,
    b: Envelope,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
) -> MergeResult:
    """Point-wise maximum of two envelopes.

    Tie-breaking: where the envelopes coincide (within ``eps``) the
    piece of ``a`` wins.  Phase 2 passes the inherited (front) profile
    as ``a`` so that coincident geometry is attributed to the nearer
    edge, matching the "front edge occludes" convention.
    """
    if not a.pieces:
        return MergeResult(Envelope(b.pieces), [], len(b.pieces))
    if not b.pieces:
        return MergeResult(Envelope(a.pieces), [], len(a.pieces))

    bounds = envelope_breakpoints(a, b)
    out = EnvelopeBuilder(eps)
    crossings: list[Crossing] = []
    ops = 0
    ia = ib = 0

    for u, v in zip(bounds, bounds[1:]):
        if u >= v:
            continue
        ops += 1
        while ia < len(a.pieces) and a.pieces[ia].yb <= u:
            ia += 1
        while ib < len(b.pieces) and b.pieces[ib].yb <= u:
            ib += 1
        pa = _piece_at(a, ia, u, v)
        pb = _piece_at(b, ib, u, v)
        if pa is None and pb is None:
            continue
        # Endpoint heights are evaluated once here and passed through
        # to the emitted pieces — ``Piece.clipped`` would recompute
        # the exact same ``z_at`` values.
        if pb is None:
            out.add(Piece(u, pa.z_at(u), v, pa.z_at(v), pa.source))  # type: ignore[union-attr]
            continue
        if pa is None:
            out.add(Piece(u, pb.z_at(u), v, pb.z_at(v), pb.source))
            continue

        pa_u = pa.z_at(u)
        pa_v = pa.z_at(v)
        pb_u = pb.z_at(u)
        pb_v = pb.z_at(v)
        du = pa_u - pb_u
        dv = pa_v - pb_v
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)

        if su >= 0 and sv >= 0:
            out.add(Piece(u, pa_u, v, pa_v, pa.source))
        elif su <= 0 and sv <= 0:
            # Coincident pieces (su == sv == 0) were taken by the
            # branch above — the front envelope wins ties.
            out.add(Piece(u, pb_u, v, pb_v, pb.source))
        else:
            # True transversal flip inside (u, v).
            t = du / (du - dv)
            w = u + t * (v - u)
            if w <= u or w >= v:  # numeric clamp: treat as one-sided
                if su > 0 or sv < 0:
                    out.add(Piece(u, pa_u, v, pa_v, pa.source))
                else:
                    out.add(Piece(u, pb_u, v, pb_v, pb.source))
                continue
            zw = pa.z_at(w)
            zw_b = pb.z_at(w)
            if su > 0:
                out.add(Piece(u, pa_u, w, zw, pa.source))
                out.add(Piece(w, zw_b, v, pb_v, pb.source))
            else:
                out.add(Piece(u, pb_u, w, zw_b, pb.source))
                out.add(Piece(w, zw, v, pa_v, pa.source))
            if record_crossings:
                left_src = pa.source if su > 0 else pb.source
                right_src = pb.source if su > 0 else pa.source
                crossings.append(Crossing(w, zw, left_src, right_src))

    return MergeResult(out.build(), crossings, ops)


def merge_many(
    envs: Sequence[Envelope],
    *,
    eps: float = EPS,
    engine: Optional[str] = None,
) -> MergeResult:
    """k-way merge of several envelopes by balanced tournament
    reduction.

    Adjacent pairs merge in rounds (a balanced, heap-shaped reduction
    tree), so total work is ``O(S log k)`` for total piece count ``S``
    instead of the ``O(S·k)`` of a left fold.  Pairing stays adjacent
    — never size-reordered — so earlier envelopes keep tie-breaking
    precedence over later ones.  This matches the former left fold on
    exact ties, but not bit-for-bit on *eps-chained* near-ties
    (eps-tie resolution is not associative) and the ``ops`` total
    differs (the fold's initial empty-accumulator merge is gone); the
    result is the same envelope up to eps everywhere.

    ``engine`` selects the merge kernel (see
    :mod:`repro.envelope.engine`); with ``"numpy"`` the reduction runs
    entirely on :class:`repro.envelope.flat.FlatEnvelope` arrays and
    converts back once at the end.
    """
    if not envs:
        return MergeResult(Envelope.empty(), [], 0)
    crossings: list[Crossing] = []
    ops = 0

    def reduce(level: list, pair_merge) -> "object":
        # Adjacent pairing with odd-tail passthrough: earlier
        # envelopes keep tie-breaking precedence over later ones —
        # the invariant both engines must share.
        nonlocal ops
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                res = pair_merge(level[i], level[i + 1])
                nxt.append(res.envelope)
                crossings.extend(res.crossings)
                ops += res.ops
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    from repro.envelope.engine import resolve_engine

    if resolve_engine(engine) == "numpy":
        from repro.envelope.flat import FlatEnvelope, merge_envelopes_flat

        flat = reduce(
            [FlatEnvelope.from_envelope(e) for e in envs],
            lambda a, b: merge_envelopes_flat(a, b, eps=eps),
        )
        return MergeResult(flat.to_envelope(), crossings, ops)

    env = reduce(
        list(envs), lambda a, b: merge_envelopes(a, b, eps=eps)
    )
    return MergeResult(env, crossings, ops)
