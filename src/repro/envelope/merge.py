"""Pairwise envelope merge (point-wise maximum) with crossing detection.

``merge_envelopes(a, b)`` sweeps the union of breakpoints left to
right; inside each elementary interval both inputs are linear, so the
winner either holds throughout or flips once at a computable crossing.

Crossings — points where the two envelopes transversally exchange
dominance — are the "intersections" the paper's analysis counts: every
crossing discovered during Phase 1 or Phase 2 is (potentially) a vertex
of some profile, and the total number discovered relates linearly to
the output size ``k``.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.geometry.primitives import EPS

__all__ = ["Crossing", "MergeResult", "merge_envelopes", "envelope_breakpoints"]


class Crossing(NamedTuple):
    """A transversal crossing between two envelope pieces.

    ``front`` / ``back`` are the source edge ids of the piece that is
    above to the *left* of the crossing and to the right respectively
    — "front"/"back" naming matches the Phase-2 use where ``a`` is the
    inherited (front) profile.
    """

    y: float
    z: float
    front: int
    back: int


class MergeResult(NamedTuple):
    """Outcome of an envelope merge.

    Attributes
    ----------
    envelope:
        The point-wise maximum of the inputs.
    crossings:
        Transversal crossings discovered, in y-order.
    ops:
        Elementary intervals processed — the sequential work of the
        merge; PRAM trackers charge this as work.
    """

    envelope: Envelope
    crossings: list[Crossing]
    ops: int


def envelope_breakpoints(*envs: Envelope) -> list[float]:
    """Sorted unique piece endpoints of the given envelopes."""
    ys: set[float] = set()
    for env in envs:
        for p in env.pieces:
            ys.add(p.ya)
            ys.add(p.yb)
    return sorted(ys)


def _piece_at(env: Envelope, idx: int, u: float, v: float) -> Optional[Piece]:
    """The piece at index ``idx`` if it covers ``[u, v]``, else ``None``."""
    if 0 <= idx < len(env.pieces):
        p = env.pieces[idx]
        if p.ya <= u and v <= p.yb:
            return p
    return None


def merge_envelopes(
    a: Envelope,
    b: Envelope,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
) -> MergeResult:
    """Point-wise maximum of two envelopes.

    Tie-breaking: where the envelopes coincide (within ``eps``) the
    piece of ``a`` wins.  Phase 2 passes the inherited (front) profile
    as ``a`` so that coincident geometry is attributed to the nearer
    edge, matching the "front edge occludes" convention.
    """
    if not a.pieces:
        return MergeResult(Envelope(b.pieces), [], len(b.pieces))
    if not b.pieces:
        return MergeResult(Envelope(a.pieces), [], len(a.pieces))

    bounds = envelope_breakpoints(a, b)
    out = EnvelopeBuilder(eps)
    crossings: list[Crossing] = []
    ops = 0
    ia = ib = 0

    for u, v in zip(bounds, bounds[1:]):
        if u >= v:
            continue
        ops += 1
        while ia < len(a.pieces) and a.pieces[ia].yb <= u:
            ia += 1
        while ib < len(b.pieces) and b.pieces[ib].yb <= u:
            ib += 1
        pa = _piece_at(a, ia, u, v)
        pb = _piece_at(b, ib, u, v)
        if pa is None and pb is None:
            continue
        if pb is None:
            out.add_clipped(pa, u, v)  # type: ignore[arg-type]
            continue
        if pa is None:
            out.add_clipped(pb, u, v)
            continue

        du = pa.z_at(u) - pb.z_at(u)
        dv = pa.z_at(v) - pb.z_at(v)
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)

        if su >= 0 and sv >= 0:
            out.add_clipped(pa, u, v)
        elif su <= 0 and sv <= 0:
            # Coincident pieces (su == sv == 0) were taken by the
            # branch above — the front envelope wins ties.
            out.add_clipped(pb, u, v)
        else:
            # True transversal flip inside (u, v).
            t = du / (du - dv)
            w = u + t * (v - u)
            if w <= u or w >= v:  # numeric clamp: treat as one-sided
                if su > 0 or sv < 0:
                    out.add_clipped(pa, u, v)
                else:
                    out.add_clipped(pb, u, v)
                continue
            zw = pa.z_at(w)
            first, second = (pa, pb) if su > 0 else (pb, pa)
            out.add_clipped(first, u, w)
            out.add_clipped(second, w, v)
            if record_crossings:
                left_src = pa.source if su > 0 else pb.source
                right_src = pb.source if su > 0 else pa.source
                crossings.append(Crossing(w, zw, left_src, right_src))

    return MergeResult(out.build(), crossings, ops)


def merge_many(
    envs: Sequence[Envelope], *, eps: float = EPS
) -> MergeResult:
    """Left-fold merge of several envelopes (helper for tests and for
    the sequential construction baseline; the parallel construction
    lives in :mod:`repro.envelope.build`)."""
    acc = Envelope.empty()
    crossings: list[Crossing] = []
    ops = 0
    for env in envs:
        res = merge_envelopes(acc, env, eps=eps)
        acc = res.envelope
        crossings.extend(res.crossings)
        ops += res.ops
    return MergeResult(acc, crossings, ops)
