"""Fused visibility+merge window kernel for the sequential flat path.

:func:`repro.envelope.flat_splice.insert_segment_flat` used to answer
each edge with **two** passes over the overlapped window: a visibility
scan (is anything of the segment above the profile?) and — when
something was — a separate merge producing the spliced window output.
Above the dispatch cutoffs those were two independent array-kernel
launches (``batch_visible_parts`` plus ``merge_envelopes_flat``), each
paying its own fixed overhead and the first materialising an
intermediate :class:`~repro.envelope.flat_visibility.FlatVisibility`;
below them, two Python loops that both evaluate the same segment and
piece supporting lines at the same interval endpoints.

This module fuses the two passes into **one sweep** in both regimes:

* :func:`fused_insert_window` — the scalar fused loop over plain-float
  window lists.  One walk over the window's elementary intervals
  classifies each (gap / visible / hidden / transversal) and emits the
  visible parts, the crossings *and* the merged output pieces from a
  single set of ``_line_z`` evaluations and dominance signs.  The
  segment-vs-piece height differences are shared: the merge's signs
  are the exact negations of the visibility scan's, and the crossing
  parameter ``t = du / (du - dv)`` is bit-identical under that
  negation, so the fused loop reproduces both reference results float
  for float.
* :func:`fused_insert_window_flat` — the same computation as one array
  program over a zero-copy :class:`~repro.envelope.flat.FlatEnvelope`
  window view: union breakpoints by an interleave+dedup (the window's
  endpoint stream is already sorted; ``y1``/``y2`` insert by two
  scalar ``searchsorted``), one covering-piece locate, one stacked
  line evaluation per interval endpoint, shared sign arrays, and
  boolean-mask emission of visible parts, crossings and merged pieces
  — a single launch where the old path had two plus a
  materialisation.

The regime boundary is :data:`repro.envelope.engine.FLAT_FUSED_CUTOFF`
(overlapped pieces); it replaces the *pair* of
``FLAT_VISIBILITY_CUTOFF``/``FLAT_MERGE_CUTOFF`` decisions on the
fused path and sits well below the old 96-piece visibility cutoff
because the fused kernel amortises one launch instead of two (see
``docs/BENCHMARKS.md`` for the measured breakeven).

Parity contract: for every insert, the fused paths produce exactly the
:class:`~repro.envelope.visibility.VisibilityResult` (parts, crossings,
``ops``) of :func:`repro.envelope.visibility.visible_parts` and exactly
the merged pieces and ``ops`` of
:func:`repro.envelope.merge.merge_envelopes` on the window — the same
contract the unfused cascade satisfies, enforced by
``tests/test_envelope_flat_fused.py`` on adversarial inputs and by the
engine-parametrized SequentialHSR suites.

Hidden inserts never touch the profile: when the fused sweep finds no
visible part (after the ``width > eps`` filter) it reports the
visibility verdict alone and charges no merge ops, exactly as the
two-pass path did.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.envelope.flat import FlatEnvelope
from repro.envelope.flat_splice import _acc_add, _line_z
from repro.envelope.visibility import VisibilityResult, VisiblePart
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "FusedWindowResult",
    "fused_insert_window",
    "fused_insert_window_flat",
]

_F = np.float64
_I = np.int64


class FusedWindowResult(NamedTuple):
    """One fused visibility+merge sweep over an overlapped window.

    ``visibility`` carries exactly what the standalone scan would
    report.  ``merged`` is the spliced window output as parallel
    ``(ya, za, yb, zb, source)`` sequences — ``None`` when the segment
    was fully hidden (no splice; ``merge_ops`` is 0 then, matching the
    two-pass path's early return before the merge).

    When the vectorized kernel is handed a ``dest`` profile it splices
    the merged window straight into it instead of handing the arrays
    back: ``profile`` is then the updated profile (the *same, mutated*
    object on the packed single-buffer layout), ``merged`` stays
    ``None``, and callers must treat every pre-call window view as
    stale.  ``profile is None`` + ``merged is None`` still means
    "fully hidden, nothing written".
    """

    visibility: VisibilityResult
    merged: Optional[tuple]
    merge_ops: int
    profile: Optional[object] = None


def fused_insert_window(
    wya: Sequence[float],
    wza: Sequence[float],
    wyb: Sequence[float],
    wzb: Sequence[float],
    wsrc: Sequence[int],
    y1: float,
    z1: float,
    y2: float,
    z2: float,
    src: int,
    eps: float,
) -> FusedWindowResult:
    """Scalar fused sweep: visibility and merged window in one loop.

    The window lists hold the profile pieces overlapping ``(y1, y2)``
    (every piece satisfies ``ya < y2`` and ``yb > y1``); sources must
    be real (``>= 0``) — synthetic pieces coalesce on a different
    builder rule and take the unfused fallback in the caller.

    One elementary interval at a time (the merge's union-breakpoint
    subdivision, which refines the visibility scan's piece walk only
    by the window-piece head before ``y1`` and tail after ``y2``),
    each segment/piece height is evaluated once and drives both the
    visibility classification and the merge emission.
    """
    k = len(wya)
    parts: list[list[float]] = []
    crossings: list[tuple[float, float]] = []
    vis_ops = 0

    oya: list[float] = []
    oza: list[float] = []
    oyb: list[float] = []
    ozb: list[float] = []
    osrc: list[int] = []
    merge_ops = 0
    line_z = _line_z

    def add(pya: float, pza: float, pyb: float, pzb: float, s: int) -> None:
        # EnvelopeBuilder.add for real sources: coalesce contiguous
        # same-source pieces whose heights agree within eps.
        if pya >= pyb:
            return
        if osrc and osrc[-1] == s and oyb[-1] == pya and abs(ozb[-1] - pza) <= eps:
            oyb[-1] = pyb
            ozb[-1] = pzb
            return
        oya.append(pya)
        oza.append(pza)
        oyb.append(pyb)
        ozb.append(pzb)
        osrc.append(s)

    # Segment height at the previous interval end: contiguous pieces
    # re-enter exactly where the previous one exited, so one segment
    # evaluation per piece serves the previous pair's end, the gap
    # start and this pair's start.
    prev_zs = z1
    for j in range(k):
        pya = wya[j]
        pza = wza[j]
        pyb = wyb[j]
        pzb = wzb[j]
        if j == 0:
            if y1 < pya:
                # Head gap: the segment alone, visible and emitted.
                zs_u = line_z(y1, z1, y2, z2, pya)
                _acc_add(parts, y1, pya, eps)
                add(y1, z1, pya, zs_u, src)
                vis_ops += 1
                merge_ops += 1
                u = pya
            else:
                if pya < y1:
                    # Window-piece head before y1: merge-only interval.
                    add(pya, pza, y1, line_z(pya, pza, pyb, pzb, y1), wsrc[j])
                    merge_ops += 1
                u = y1
                zs_u = z1
        else:
            g0 = wyb[j - 1]
            u = pya
            if g0 < pya:
                # Gap between pieces — always inside (y1, y2);
                # ``g0`` is the previous interval end, so the segment
                # height there is already in hand.
                zs_u = line_z(y1, z1, y2, z2, pya)
                _acc_add(parts, g0, pya, eps)
                add(g0, prev_zs, pya, zs_u, src)
                vis_ops += 1
                merge_ops += 1
            else:
                zs_u = prev_zs
        if pyb < y2:
            v = pyb
            zs_v = line_z(y1, z1, y2, z2, pyb)
        else:
            v = y2
            zs_v = z2
        # Overlap interval (u, v): non-empty by the window invariant.
        zw_u = pza if u == pya else line_z(pya, pza, pyb, pzb, u)
        zw_v = pzb if v == pyb else line_z(pya, pza, pyb, pzb, v)
        du = zs_u - zw_u
        dv = zs_v - zw_v
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
        vis_ops += 1
        merge_ops += 1
        if su >= 0 and sv >= 0 and (su > 0 or sv > 0):
            # Segment strictly above somewhere, never strictly below.
            _acc_add(parts, u, v, eps)
            add(u, zs_u, v, zs_v, src)
        elif su <= 0 and sv <= 0:
            # Hidden (or coincident — the window wins ties).
            add(u, zw_u, v, zw_v, wsrc[j])
        else:
            t = du / (du - dv)
            w = u + t * (v - u)
            if w <= u or w >= v:  # numeric clamp: treat as one-sided
                if su < 0 or sv > 0:
                    add(u, zw_u, v, zw_v, wsrc[j])
                else:
                    add(u, zs_u, v, zs_v, src)
                wc = u if w <= u else v
                if su > 0:
                    _acc_add(parts, u, wc, eps)
                else:
                    _acc_add(parts, wc, v, eps)
            else:
                zw_w = line_z(pya, pza, pyb, pzb, w)
                zs_w = line_z(y1, z1, y2, z2, w)
                if su > 0:
                    _acc_add(parts, u, w, eps)
                    add(u, zs_u, w, zs_w, src)
                    add(w, zw_w, v, zw_v, wsrc[j])
                else:
                    _acc_add(parts, w, v, eps)
                    add(u, zw_u, w, zw_w, wsrc[j])
                    add(w, zs_w, v, zs_v, src)
                crossings.append((w, zs_w))

        if j == k - 1:
            if v < y2:
                # Trailing gap past the last piece.
                _acc_add(parts, v, y2, eps)
                add(v, zs_v, y2, z2, src)
                vis_ops += 1
                merge_ops += 1
            elif y2 < pyb:
                # Window-piece tail past y2: merge-only interval.
                add(y2, zw_v, pyb, pzb, wsrc[j])
                merge_ops += 1
        prev_zs = zs_v

    out_parts = [VisiblePart(a, b) for a, b in parts if b - a > eps]
    vis = VisibilityResult(out_parts, crossings, max(vis_ops, 1))
    if not out_parts:
        return FusedWindowResult(vis, None, 0)
    return FusedWindowResult(vis, (oya, oza, oyb, ozb, osrc), merge_ops)


def fused_insert_window_flat(
    window: FlatEnvelope,
    y1: float,
    z1: float,
    y2: float,
    z2: float,
    src: int,
    eps: float,
    dest: "Optional[object]" = None,
    dest_range: Optional[tuple] = None,
) -> FusedWindowResult:
    """Vectorized fused sweep over a zero-copy window view.

    One array program replaces the batched visibility launch, its
    intermediate ``FlatVisibility`` materialisation *and* the flat
    merge launch of the two-pass path.  Sources must be real
    (``>= 0``): the vectorized coalesce applies the real-source
    builder rule only.

    ``dest`` (with ``dest_range = (lo, hi)``) asks the kernel to write
    the merged window straight back into the owning profile via its
    ``splice`` — in place, with zero extra moves when the merged piece
    count equals the window's, on the packed single-buffer layout.
    The write happens strictly *after* the last read of the window
    view, so the view staleness a packed splice causes can never feed
    back into this sweep.  ``window`` must be ``dest``'s own
    ``window(lo, hi)`` view.
    """
    if _fi.ARMED:
        _fi.trip("fused_insert")
    wya, wza = window.ya, window.za
    wyb, wzb = window.yb, window.zb
    wsrc = window.source
    k = len(wya)

    # ---- union breakpoints: interleave + dedup + insert y1/y2 ------
    ev = np.empty(2 * k, _F)
    ev[0::2] = wya
    ev[1::2] = wyb
    keep = np.empty(2 * k, bool)
    keep[0] = True
    keep[1:] = ev[1:] != ev[:-1]
    bounds = ev[keep] if not keep.all() else ev
    nb = len(bounds)
    # y1/y2 insert near the window edges (the first piece overlaps
    # past y1, the last past y2); two scalar searchsorteds and slice
    # stores beat ``np.insert``'s generic machinery by ~10µs.
    p1 = int(bounds.searchsorted(y1, side="left"))
    p2 = int(bounds.searchsorted(y2, side="left"))
    ins1 = p1 == nb or bounds[p1] != y1
    ins2 = p2 == nb or bounds[p2] != y2
    if ins1 or ins2:
        grown = np.empty(nb + ins1 + ins2, _F)
        grown[:p1] = bounds[:p1]
        w_at = p1
        if ins1:
            grown[w_at] = y1
            w_at += 1
        grown[w_at : w_at + (p2 - p1)] = bounds[p1:p2]
        w_at += p2 - p1
        if ins2:
            grown[w_at] = y2
            w_at += 1
        grown[w_at:] = bounds[p2:]
        bounds = grown

    u = bounds[:-1]
    v = bounds[1:]
    n_iv = len(u)
    merge_ops = n_iv  # every elementary interval is non-degenerate

    # ---- covering piece and coverage masks -------------------------
    cand = wya.searchsorted(u, side="right") - 1
    candc = np.maximum(cand, 0)
    pya = wya[candc]
    pza = wza[candc]
    pyb = wyb[candc]
    pzb = wzb[candc]
    pa = (cand >= 0) & (pyb >= v)
    pb = (u >= y1) & (v <= y2)

    # ---- heights: segment line and covering piece at u and v -------
    # One error-state guard serves every evaluation below (lanes of
    # non-covering candidates hold garbage and may overflow; they are
    # masked out before use).
    old_err = np.seterr(over="ignore", invalid="ignore")
    try:
        uv = np.concatenate([u, v])
        t_s = (uv - y1) / (y2 - y1)
        zs = np.where(t_s == 1.0, z2, z1 + (z2 - z1) * t_s)
        zs_u, zs_v = zs[:n_iv], zs[n_iv:]
        span = pyb - pya
        t_u = (u - pya) / span
        zw_u = np.where(t_u == 1.0, pzb, pza + (pzb - pza) * t_u)
        t_v = (v - pya) / span
        zw_v = np.where(t_v == 1.0, pzb, pza + (pzb - pza) * t_v)
    finally:
        np.seterr(**old_err)

    # ---- dominance signs (visibility orientation: seg - window) ----
    both = pa & pb
    du = zs_u - zw_u
    dv = zs_v - zw_v
    su = (du > eps).astype(np.int8)
    su -= du < -eps
    sv = (dv > eps).astype(np.int8)
    sv -= dv < -eps

    hidden = both & (su <= 0) & (sv <= 0)
    seg_dom = both & ~hidden & (su >= 0) & (sv >= 0)
    tr = np.flatnonzero(both & ~hidden & ~seg_dom)

    # ---- transversal pairs: shared crossing parameter --------------
    win_dom = hidden
    vis_ya = u
    vis_yb = v
    if len(tr):
        dut = du[tr]
        dvt = dv[tr]
        t = dut / (dut - dvt)
        w = u[tr] + t * (v[tr] - u[tr])
        degenerate = (w <= u[tr]) | (w >= v[tr])
        # Merge side: degenerate flips collapse to one-sided
        # dominance.
        if degenerate.any():
            deg = tr[degenerate]
            win_side = (su[deg] < 0) | (sv[deg] > 0)
            win_dom = hidden.copy()
            win_dom[deg[win_side]] = True
            seg_dom[deg[~win_side]] = True
        cross = tr[~degenerate]
        w_int = w[~degenerate]
        n_x = len(cross)
        if n_x:
            # Real covering pieces and an interior w: no garbage
            # lanes, so no error-state guard is needed here.
            span_x = pyb[cross] - pya[cross]
            t_w = (w_int - pya[cross]) / span_x
            zw_w = np.where(
                t_w == 1.0, pzb[cross], pza[cross] + (pzb[cross] - pza[cross]) * t_w
            )
            t_x = (w_int - y1) / (y2 - y1)
            zs_w = np.where(t_x == 1.0, z2, z1 + (z2 - z1) * t_x)
        else:
            zw_w = zs_w = np.empty(0, _F)
        rising = su[tr] < 0  # hidden then visible: part (w, v)

        # Clamped visibility sub-interval of each transversal pair.
        w_clamp = np.minimum(np.maximum(w, u[tr]), v[tr])
        vis_ya = u.copy()
        vis_yb = v.copy()
        vis_ya[tr[rising]] = w_clamp[rising]
        vis_yb[tr[~rising]] = w_clamp[~rising]
    else:
        cross = tr
        w_int = zw_w = zs_w = np.empty(0, _F)
        n_x = 0

    # ---- visibility: candidate parts, accumulator merge ------------
    # Candidates in y-order: every in-span interval contributes one —
    # a gap (segment only), the full overlap, or the clamped
    # transversal sub-interval; hidden pairs contribute none.
    vis_valid = pb & ~hidden
    vis_ops = int(pb.sum())

    sel = np.flatnonzero(vis_valid)
    cya = vis_ya[sel]
    cyb = vis_yb[sel]
    n_sel = len(sel)
    out_parts: list[VisiblePart] = []
    if n_sel:
        new = np.empty(n_sel, bool)
        new[0] = True
        # Candidates are disjoint with non-decreasing ends, so the
        # accumulated last end *is* the previous candidate's end.
        new[1:] = cya[1:] > cyb[:-1] + eps
        pstarts = np.flatnonzero(new)
        pends = np.empty_like(pstarts)
        pends[:-1] = pstarts[1:] - 1
        pends[-1] = n_sel - 1
        m_ya = cya[pstarts]
        m_yb = cyb[pends]
        wide = (m_yb - m_ya) > eps
        out_parts = list(
            map(VisiblePart._make, zip(m_ya[wide].tolist(), m_yb[wide].tolist()))
        )

    # Crossings: strictly interior flips (the non-degenerate
    # transversal set is exactly interior), z on the segment line.
    out_cross = list(zip(w_int.tolist(), zs_w.tolist()))

    vis = VisibilityResult(out_parts, out_cross, max(vis_ops, 1))
    if not out_parts:
        return FusedWindowResult(vis, None, 0)

    # ---- merge emission: one or two pieces per covered interval ----
    emit_w = (pa & ~pb) | win_dom
    emit_s = (pb & ~pa) | seg_dom
    emit1 = emit_w | emit_s
    counts = emit1.astype(_I)
    counts[cross] = 2
    offs = np.cumsum(counts)
    n_out = int(offs[-1])
    offs -= counts

    out_ya = np.empty(n_out, _F)
    out_za = np.empty(n_out, _F)
    out_yb = np.empty(n_out, _F)
    out_zb = np.empty(n_out, _F)
    out_src = np.empty(n_out, _I)

    one = np.flatnonzero(emit1)
    ew = emit_w[one]
    pos = offs[one]
    out_ya[pos] = u[one]
    out_za[pos] = np.where(ew, zw_u[one], zs_u[one])
    out_yb[pos] = v[one]
    out_zb[pos] = np.where(ew, zw_v[one], zs_v[one])
    out_src[pos] = np.where(ew, wsrc[candc[one]], src)

    if n_x:
        # Transversal split: first side is the one above at u — the
        # window when su < 0 (segment below), the segment when su > 0.
        first_w = su[cross] < 0
        src_w = wsrc[candc[cross]]
        p1x = offs[cross]
        out_ya[p1x] = u[cross]
        out_za[p1x] = np.where(first_w, zw_u[cross], zs_u[cross])
        out_yb[p1x] = w_int
        out_zb[p1x] = np.where(first_w, zw_w, zs_w)
        out_src[p1x] = np.where(first_w, src_w, src)
        p2x = p1x + 1
        out_ya[p2x] = w_int
        out_za[p2x] = np.where(first_w, zs_w, zw_w)
        out_yb[p2x] = v[cross]
        out_zb[p2x] = np.where(first_w, zs_v[cross], zw_v[cross])
        out_src[p2x] = np.where(first_w, src, src_w)

    # ---- coalesce (EnvelopeBuilder real-source rule) ---------------
    if n_out:
        join = np.empty(n_out, bool)
        join[0] = False
        join[1:] = (
            (out_src[1:] == out_src[:-1])
            & (out_ya[1:] == out_yb[:-1])
            & (np.abs(out_za[1:] - out_zb[:-1]) <= eps)
        )
        if join.any():
            starts = np.flatnonzero(~join)
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:] - 1
            ends[-1] = n_out - 1
            out_ya = out_ya[starts]
            out_za = out_za[starts]
            out_yb = out_yb[ends]
            out_zb = out_zb[ends]
            out_src = out_src[starts]

    # Guard hook: corrupt the freshly-built (never aliased) output
    # lanes if an injection plan targets this site, then validate them
    # *before* the dest-splice commits anything to the live profile —
    # the insert-level retry needs the profile unmutated.
    if _fi.ARMED:
        out_ya, out_za, out_yb, out_zb, out_src = _fi.corrupt_lanes(
            "fused_insert", out_ya, out_za, out_yb, out_zb, out_src
        )
    if _fi.ARMED or _guard.GUARDED_CHECK_ALL:
        _guard.check_flat("fused_insert", out_ya, out_za, out_yb, out_zb)

    if dest is not None:
        lo, hi = dest_range
        new = dest.splice(lo, hi, out_ya, out_za, out_yb, out_zb, out_src)
        return FusedWindowResult(vis, None, merge_ops, new)
    return FusedWindowResult(
        vis, (out_ya, out_za, out_yb, out_zb, out_src), merge_ops
    )
