"""Experiment table infrastructure.

Every experiment in DESIGN.md §5 produces a :class:`Table` — the rows
the paper *would* have printed had it carried an evaluation section.
``python -m repro.bench`` regenerates all of them (EXPERIMENTS.md
records a captured run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BenchmarkError

__all__ = ["Table", "EXPERIMENT_REGISTRY", "experiment", "run_experiment"]


@dataclass
class Table:
    """A titled table of result rows."""

    name: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list[Any]:
        return [row.get(key) for row in self.rows]

    def format(self) -> str:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1000 or abs(v) < 0.01:
                    return f"{v:.3g}"
                return f"{v:.3f}"
            return str(v)

        widths = {
            c: max(len(c), *(len(fmt(r.get(c, ""))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        header = "  ".join(c.rjust(widths[c]) for c in self.columns)
        sep = "-" * len(header)
        lines = [f"== {self.name}: {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(
                "  ".join(
                    fmt(row.get(c, "")).rjust(widths[c])
                    for c in self.columns
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: name -> callable() -> Table
EXPERIMENT_REGISTRY: dict[str, Callable[..., Table]] = {}


def experiment(name: str) -> Callable[[Callable[..., Table]], Callable[..., Table]]:
    """Register an experiment function under ``name`` (e.g. ``"E1"``)."""

    def deco(fn: Callable[..., Table]) -> Callable[..., Table]:
        EXPERIMENT_REGISTRY[name] = fn
        return fn

    return deco


def run_experiment(name: str, **kwargs: Any) -> Table:
    """Run a registered experiment by name."""
    # Importing the experiments module populates the registry.
    import repro.bench.experiments  # noqa: F401

    try:
        fn = EXPERIMENT_REGISTRY[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {name!r};"
            f" known: {sorted(EXPERIMENT_REGISTRY)}"
        ) from None
    return fn(**kwargs)
