"""The experiment suite: one function per DESIGN.md §5 entry.

Each experiment reproduces one claim of the paper (a lemma/theorem
bound or a figure's structural statement) as a measured table.  The
paper has no empirical section, so the "expected" column of each table
is the theoretical envelope the measurement must track; EXPERIMENTS.md
records a captured run with the pass/fail reading.

All experiments accept ``quick=True`` (smaller sweeps) so the whole
suite runs in CI time; benchmarks call the same functions.
"""

from __future__ import annotations

import math
import random
import time

from repro.bench.harness import Table, experiment
from repro.bench.workloads import occlusion_suite, scaling_suite
from repro.envelope.build import build_envelope
from repro.hsr.cg import ProfileIndex
from repro.hsr.intersect import all_intersections_lemma32
from repro.hsr.naive import NaiveHSR
from repro.hsr.parallel import ParallelHSR
from repro.hsr.sequential import SequentialHSR
from repro.hsr.zbuffer import ZBufferHSR
from repro.geometry.segments import ImageSegment
from repro.pram.schedule import (
    phases_from_tracker,
    slowdown_time,
    speedup_curve,
)
from repro.pram.tracker import PramTracker

__all__ = ["ALL_EXPERIMENTS"]


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def _sizes(quick: bool) -> tuple[int, ...]:
    return (9, 17, 33) if quick else (9, 17, 33, 65)


@experiment("E1")
def e1_depth(quick: bool = True) -> Table:
    """Theorem 3.1: parallel depth is O(log^4 n)."""
    t = Table(
        "E1",
        "parallel depth vs log^4(n) (Theorem 3.1)",
        ["workload", "n", "k", "depth", "log4n", "depth/log4n"],
    )
    for label, terrain in scaling_suite(_sizes(quick)):
        tracker = PramTracker()
        res = ParallelHSR(mode="persistent").run(terrain, tracker=tracker)
        l4 = _log2(terrain.n_edges) ** 4
        t.add(
            workload=label,
            n=terrain.n_edges,
            k=res.k,
            depth=tracker.depth,
            log4n=l4,
            **{"depth/log4n": tracker.depth / l4},
        )
    t.notes.append(
        "reproduced when the ratio column is bounded (flat or"
        " decreasing) as n grows"
    )
    return t


@experiment("E2")
def e2_work(quick: bool = True) -> Table:
    """Theorem 3.1: total work is O((n + k) log^3 n)."""
    t = Table(
        "E2",
        "parallel work vs (n+k)·log^3(n) (Theorem 3.1)",
        ["workload", "n", "k", "work", "bound", "work/bound"],
    )
    for kind in ("fractal", "valley"):
        for label, terrain in scaling_suite(_sizes(quick), kind=kind):
            tracker = PramTracker()
            res = ParallelHSR(mode="persistent").run(
                terrain, tracker=tracker
            )
            bound = (terrain.n_edges + res.k) * _log2(terrain.n_edges) ** 3
            t.add(
                workload=label,
                n=terrain.n_edges,
                k=res.k,
                work=tracker.work,
                bound=bound,
                **{"work/bound": tracker.work / bound},
            )
    t.notes.append("reproduced when work/bound stays bounded as n grows")
    return t


@experiment("E3")
def e3_output_sensitivity(quick: bool = True) -> Table:
    """Output-sensitivity: cost tracks k at fixed n; naive does not."""
    rows_cols = 14 if quick else 20
    t = Table(
        "E3",
        "fixed n, swept output size k (shielded basin)",
        [
            "occlusion",
            "n",
            "k",
            "par_work",
            "seq_ops",
            "naive_ops",
            "par/naive",
        ],
    )
    for q, terrain in occlusion_suite(rows=rows_cols, cols=rows_cols):
        tracker = PramTracker()
        par = ParallelHSR(mode="acg").run(terrain, tracker=tracker)
        seq = SequentialHSR().run(terrain)
        naive = NaiveHSR().run(terrain)
        t.add(
            occlusion=q,
            n=terrain.n_edges,
            k=par.k,
            par_work=tracker.work,
            seq_ops=seq.stats.ops,
            naive_ops=naive.stats.ops,
            **{"par/naive": tracker.work / max(naive.stats.ops, 1)},
        )
    t.notes.append(
        "reproduced when par_work and seq_ops fall with occlusion"
        " (k shrinks) while naive_ops stays ~constant"
    )
    return t


@experiment("E4")
def e4_work_ratio(quick: bool = True) -> Table:
    """Remark after Thm 3.1: parallel work within O(log n) of the
    sequential output-sensitive algorithm."""
    t = Table(
        "E4",
        "parallel work / sequential ops vs log n",
        ["workload", "n", "par_work", "seq_ops", "ratio", "log_n", "ratio/log_n"],
    )
    for label, terrain in scaling_suite(_sizes(quick)):
        tracker = PramTracker()
        ParallelHSR(mode="persistent").run(terrain, tracker=tracker)
        seq = SequentialHSR().run(terrain)
        ratio = tracker.work / max(seq.stats.ops, 1)
        ln = _log2(terrain.n_edges)
        t.add(
            workload=label,
            n=terrain.n_edges,
            par_work=tracker.work,
            seq_ops=seq.stats.ops,
            ratio=ratio,
            log_n=ln,
            **{"ratio/log_n": ratio / ln},
        )
    t.notes.append("reproduced when ratio/log_n is bounded as n grows")
    return t


@experiment("E5")
def e5_sharing(quick: bool = True) -> Table:
    """Figs. 1 & 3: profiles share structure across a PCT layer; the
    persistent store avoids the copying cost."""
    sizes = (17, 33) if quick else (17, 33, 65)
    t = Table(
        "E5",
        "structure sharing across PCT layers (persistent vs copying)",
        [
            "workload",
            "n",
            "max_layer_shared_frac",
            "nodes_persistent",
            "pieces_copying",
            "saving",
        ],
    )
    for label, terrain in scaling_suite(sizes):
        par_p = ParallelHSR(mode="persistent", measure_sharing=True).run(
            terrain
        )
        par_d = ParallelHSR(mode="direct").run(terrain)
        layers = par_p.phase2.layers  # type: ignore[attr-defined]
        fracs = [
            l.shared_nodes / l.total_nodes
            for l in layers
            if l.total_nodes > 0
        ]
        nodes = par_p.stats.extra["nodes_allocated"]
        pieces = par_d.stats.extra["pieces_materialised"]
        t.add(
            workload=label,
            n=terrain.n_edges,
            max_layer_shared_frac=max(fracs) if fracs else 0.0,
            nodes_persistent=nodes,
            pieces_copying=pieces,
            saving=pieces / max(nodes, 1.0),
        )
    t.notes.append(
        "reproduced when shared fraction is substantial (>0.2) and the"
        " copying representation materialises several times more"
        " pieces than the persistent one allocates nodes"
    )
    return t


def _final_profile(terrain) -> "object":
    return SequentialHSR().final_profile(terrain)


def _random_profile(m: int, seed: int):
    """A profile of ``m`` random segments — the lemmas' own setting
    ('a profile with m vertices')."""
    rng = random.Random(seed)
    segs = []
    for i in range(m):
        y1 = rng.uniform(0, 1000)
        segs.append(
            ImageSegment(
                y1,
                rng.uniform(0, 100),
                y1 + rng.uniform(1, 60),
                rng.uniform(0, 100),
                i,
            )
        )
    return build_envelope(segs).envelope


@experiment("E6")
def e6_cg_query(quick: bool = True) -> Table:
    """Fig. 2 + Lemma 3.6: first-intersection probes are O(log^2 m)."""
    ms = (256, 1024, 4096) if quick else (256, 1024, 4096, 16384)
    rng = random.Random(5)
    t = Table(
        "E6",
        "CG first-intersection probe count vs log^2(profile size)",
        ["m", "pieces", "queries", "mean_probes", "log2m_sq", "probes/log2"],
    )
    for m in ms:
        env = _random_profile(m, seed=m)
        index = ProfileIndex(env)
        lo, hi = env.y_span()
        zs = [v.y for v in env.vertices()]
        z0, z1 = min(zs), max(zs)
        probes = []
        n_q = 100 if quick else 400
        for _ in range(n_q):
            y1 = rng.uniform(lo, hi)
            y2 = rng.uniform(lo, hi)
            if abs(y2 - y1) < 1e-6:
                y2 = y1 + 1e-3
            seg = ImageSegment.make(
                (min(y1, y2), rng.uniform(z0, z1)),
                (max(y1, y2), rng.uniform(z0, z1)),
            )
            _, p = index.first_intersection(seg)
            probes.append(p)
        l2 = _log2(env.size) ** 2
        mean = sum(probes) / len(probes)
        t.add(
            m=m,
            pieces=env.size,
            queries=len(probes),
            mean_probes=mean,
            log2m_sq=l2,
            **{"probes/log2": mean / l2},
        )
    t.notes.append(
        "reproduced when probes/log2 stays bounded as the profile grows"
    )
    return t


@experiment("E7")
def e7_acg_build(quick: bool = True) -> Table:
    """Lemmas 3.3-3.5: ACG construction cost O(k log^2 k)."""
    ms = (256, 1024, 4096) if quick else (256, 1024, 4096, 16384)
    t = Table(
        "E7",
        "ACG build cost vs m·log^2(m)",
        ["m", "pieces", "build_ops", "bound", "ops/bound", "height"],
    )
    for m in ms:
        env = _random_profile(m, seed=m + 1)
        index = ProfileIndex(env)
        pieces = env.size
        bound = pieces * _log2(pieces) ** 2
        t.add(
            m=m,
            pieces=pieces,
            build_ops=index.build_ops,
            bound=bound,
            **{"ops/bound": index.build_ops / bound},
            height=index.height(),
        )
    t.notes.append(
        "reproduced when ops/bound is bounded (the hull-merge build is"
        " O(m log m), comfortably inside the lemma's O(m log^2 m))"
    )
    return t


@experiment("E8")
def e8_speedup(quick: bool = True) -> Table:
    """Lemma 2.1/2.2 + Brent: predicted time on p processors."""
    size = 33 if quick else 65
    terrain = scaling_suite((size,))[0][1]
    tracker = PramTracker()
    ParallelHSR(mode="persistent").run(terrain, tracker=tracker)
    t = Table(
        "E8",
        f"Brent-scheduled time on p processors (n={terrain.n_edges},"
        f" work={tracker.work:.0f}, depth={tracker.depth:.0f})",
        ["p", "time_p", "speedup", "efficiency", "time_p_alloc"],
    )
    phases = phases_from_tracker(tracker)
    ps = [1, 2, 4, 8, 16, 32, 64, 128, 256]
    for p, tp, su in speedup_curve(tracker.work, tracker.depth, ps):
        t.add(
            p=p,
            time_p=tp,
            speedup=su,
            efficiency=su / p,
            time_p_alloc=slowdown_time(phases, p),
        )
    t.notes.append(
        "reproduced when speedup is near-linear until p approaches"
        f" work/depth = {tracker.parallelism:.0f}, then saturates"
    )
    return t


@experiment("E9")
def e9_envelope(quick: bool = True) -> Table:
    """Lemma 3.1: envelope construction depth O(log^2 m)."""
    rng = random.Random(17)
    ms = (64, 256, 1024) if quick else (64, 256, 1024, 4096)
    t = Table(
        "E9",
        "divide-and-conquer envelope: depth vs log^2 m",
        ["m", "env_size", "depth", "log2m_sq", "depth/log2", "work"],
    )
    for m in ms:
        segs = []
        for i in range(m):
            y1 = rng.uniform(0, 1000)
            w = rng.uniform(1, 60)
            segs.append(
                ImageSegment(
                    y1, rng.uniform(0, 100), y1 + w, rng.uniform(0, 100), i
                )
            )
        tracker = PramTracker()
        res = build_envelope(segs, tracker=tracker)
        l2 = _log2(m) ** 2
        t.add(
            m=m,
            env_size=res.envelope.size,
            depth=tracker.depth,
            log2m_sq=l2,
            **{"depth/log2": tracker.depth / l2},
            work=tracker.work,
        )
    t.notes.append("reproduced when depth/log2 is bounded as m grows")
    return t


@experiment("E10")
def e10_lemma32(quick: bool = True) -> Table:
    """Lemma 3.2: all k_s intersections via middle-diagonal splitting.

    A sawtooth profile crossed by horizontal query lines at different
    heights sweeps k_s from 0 to 2·teeth on the same structure.
    """
    from repro.envelope.chain import Envelope, Piece

    teeth = 128 if quick else 512
    rng = random.Random(29)
    pieces = []
    for i in range(teeth):
        y = float(2 * i)
        peak = rng.uniform(0.05, 2.0)  # a z-query crosses only the
        pieces.append(Piece(y, 0.0, y + 1, peak, i))  # teeth taller than it
        pieces.append(Piece(y + 1, peak, y + 2, 0.0, i))
    env = Envelope(pieces)
    index = ProfileIndex(env)
    m = env.size
    l2 = _log2(m) ** 2
    t = Table(
        "E10",
        f"all-intersections probes vs (k_s+1)·log^2 m (sawtooth m={m})",
        ["query_z", "k_s", "probes", "bound", "probes/bound"],
    )
    for z in (2.5, 1.9, 1.5, 1.0, 0.5, 0.1):
        seg = ImageSegment(0.0, z, float(2 * teeth), z, 9999)
        hits, probes = all_intersections_lemma32(index, seg)
        bound = (len(hits) + 1) * l2
        t.add(
            query_z=z,
            k_s=len(hits),
            probes=probes,
            bound=bound,
            **{"probes/bound": probes / bound},
        )
    t.notes.append(
        "reproduced when probes/bound stays bounded across three orders"
        " of magnitude of k_s: the recursion does O((k_s+1)·log^2 m)"
        " work per segment"
    )
    return t


@experiment("E11")
def e11_ablation(quick: bool = True) -> Table:
    """Ablation: the three Phase-2 engines on identical inputs."""
    size = 17 if quick else 33
    t = Table(
        "E11",
        "phase-2 engine ablation (same output, different cost)",
        ["workload", "mode", "k", "ops", "nodes_alloc", "pieces_copied", "seconds"],
    )
    for label, terrain in scaling_suite((size,), kind="fractal") + scaling_suite(
        (size,), kind="valley"
    ):
        base = None
        for mode in ("direct", "persistent", "acg"):
            t0 = time.perf_counter()
            res = ParallelHSR(mode=mode).run(terrain)
            dt = time.perf_counter() - t0
            if base is None:
                base = res.visibility_map
            else:
                assert res.visibility_map.approx_same(base, tol=1e-6)
            t.add(
                workload=label,
                mode=mode,
                k=res.k,
                ops=res.stats.extra["phase2_ops"],
                nodes_alloc=res.stats.extra["nodes_allocated"],
                pieces_copied=res.stats.extra["pieces_materialised"],
                seconds=dt,
            )
    t.notes.append(
        "reproduced when persistent/acg allocate far fewer nodes than"
        " direct materialises pieces, at identical visibility maps"
    )
    return t


@experiment("E12")
def e12_zbuffer(quick: bool = True) -> Table:
    """Object-space vs image-space: z-buffer cost scales with pixels,
    not with k; object-space output is resolution independent."""
    terrain = scaling_suite((17,) if quick else (33,))[0][1]
    obj = SequentialHSR().run(terrain)
    t = Table(
        "E12",
        f"z-buffer vs object-space (n={terrain.n_edges}, k={obj.k})",
        ["method", "resolution", "pixels", "visible_len", "len_ratio", "seconds"],
    )
    t.add(
        method="object-space",
        resolution="-",
        pixels=0,
        visible_len=obj.visibility_map.total_visible_length(),
        len_ratio=1.0,
        seconds=obj.stats.wall_time_s,
    )
    ref = obj.visibility_map.total_visible_length()
    for res_px in (64, 128, 256) if quick else (64, 128, 256, 512):
        zb = ZBufferHSR(width=res_px, height=res_px).run(terrain)
        length = zb.visibility_map.total_visible_length()
        t.add(
            method="z-buffer",
            resolution=f"{res_px}x{res_px}",
            pixels=res_px * res_px,
            visible_len=length,
            len_ratio=length / ref,
            seconds=zb.stats.wall_time_s,
        )
    t.notes.append(
        "reproduced when len_ratio approaches 1 with resolution while"
        " z-buffer cost grows with pixel count — the device-dependence"
        " the paper's object-space output avoids"
    )
    return t


@experiment("E13")
def e13_perspective(quick: bool = True) -> Table:
    """§2: "the algorithm works for perspective projection as well" —
    the projective-transform reduction preserves algorithm agreement,
    and moving the viewpoint sweeps k at fixed n."""
    from repro.terrain.perspective import Viewpoint, perspective_transform

    size = 17 if quick else 33
    terrain = scaling_suite((size,))[0][1]
    xmax = max(v.x for v in terrain.vertices)
    z_lo, z_hi = terrain.height_range()
    t = Table(
        "E13",
        f"perspective views of one scene (n={terrain.n_edges})",
        ["view", "viewpoint_z", "k", "visible_edges", "engines_agree"],
    )
    ortho = SequentialHSR().run(terrain)
    t.add(
        view="orthographic",
        viewpoint_z="-",
        k=ortho.k,
        visible_edges=len(ortho.visibility_map.visible_edges()),
        engines_agree=True,
    )
    for height_factor in (0.5, 1.5, 4.0):
        vz = z_lo + height_factor * (z_hi - z_lo)
        view = Viewpoint(xmax + 0.2 * xmax + 1.0, 0.0, vz)
        scene = perspective_transform(terrain, view)
        seq = SequentialHSR().run(scene)
        par = ParallelHSR(mode="persistent").run(scene)
        agree = par.visibility_map.approx_same(
            seq.visibility_map, tol=1e-6
        )
        t.add(
            view="perspective",
            viewpoint_z=f"{vz:.1f}",
            k=seq.k,
            visible_edges=len(seq.visibility_map.visible_edges()),
            engines_agree=agree,
        )
    t.notes.append(
        "reproduced when engines agree on every perspective scene and"
        " k grows with viewpoint height (more of the scene exposed)"
    )
    return t


@experiment("E14")
def e14_ordering(quick: bool = True) -> Table:
    """Fact 1 substrate: the front-to-back ordering produces O(n)
    constraints and a valid linear extension at near-linearithmic
    cost (the separator tree's role, DESIGN.md §2)."""
    from repro.ordering.sweep import front_to_back_order, order_constraints

    t = Table(
        "E14",
        "ordering sweep: constraints vs n",
        ["workload", "n", "constraints", "constraints/n", "seconds"],
    )
    for label, terrain in scaling_suite(_sizes(quick)):
        segs = terrain.map_segments()
        t0 = time.perf_counter()
        cons = order_constraints(segs)
        order = front_to_back_order(terrain, segments=segs)
        dt = time.perf_counter() - t0
        assert sorted(order) == list(range(terrain.n_edges))
        t.add(
            workload=label,
            n=terrain.n_edges,
            constraints=len(cons),
            **{"constraints/n": len(cons) / terrain.n_edges},
            seconds=dt,
        )
    t.notes.append(
        "reproduced when constraints/n is a small constant (~3):"
        " adjacency events are linear in n, as the separator-tree"
        " ordering requires"
    )
    return t


ALL_EXPERIMENTS = (
    "E1",
    "E2",
    "E3",
    "E4",
    "E5",
    "E6",
    "E7",
    "E8",
    "E9",
    "E10",
    "E11",
    "E12",
    "E13",
    "E14",
)
