"""Benchmark harness: experiment registry, tables, workload suites.

Run everything with ``python -m repro.bench`` (see ``__main__``).
"""

from repro.bench.harness import (
    EXPERIMENT_REGISTRY,
    Table,
    experiment,
    run_experiment,
)
from repro.bench.workloads import occlusion_suite, scaling_suite

__all__ = [
    "EXPERIMENT_REGISTRY",
    "Table",
    "experiment",
    "occlusion_suite",
    "run_experiment",
    "scaling_suite",
]
