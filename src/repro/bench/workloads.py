"""Workload suites for the experiments (DESIGN.md §5).

Centralised so the pytest-benchmark targets, the example scripts and
EXPERIMENTS.md all measure exactly the same inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.terrain.generators import (
    fractal_terrain,
    shielded_basin_terrain,
    valley_terrain,
)
from repro.terrain.model import Terrain

__all__ = [
    "scaling_suite",
    "occlusion_suite",
    "DEFAULT_SCALING_SIZES",
    "DEFAULT_OCCLUSIONS",
]

#: Diamond–square grid sizes for n-scaling sweeps (sizes are 2**k+1;
#: edge counts n ≈ 3·size²).
DEFAULT_SCALING_SIZES: tuple[int, ...] = (9, 17, 33, 65)

#: Wall-height factors for the E3 output-size sweep.
DEFAULT_OCCLUSIONS: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9, 1.2, 1.6)


def scaling_suite(
    sizes: Sequence[int] = DEFAULT_SCALING_SIZES,
    *,
    kind: str = "fractal",
    seed: int = 11,
) -> list[tuple[str, Terrain]]:
    """``(label, terrain)`` pairs of growing input size.

    ``kind`` is ``fractal`` (mid occlusion) or ``valley`` (high output
    size) — the two regimes E1/E2 report.
    """
    out: list[tuple[str, Terrain]] = []
    for size in sizes:
        if kind == "fractal":
            t = fractal_terrain(size=size, seed=seed)
        elif kind == "valley":
            rows = cols = size
            t = valley_terrain(rows=rows, cols=cols, seed=seed)
        else:
            raise ValueError(f"unknown scaling kind {kind!r}")
        out.append((f"{kind}-{size}", t))
    return out


def occlusion_suite(
    occlusions: Iterable[float] = DEFAULT_OCCLUSIONS,
    *,
    rows: int = 20,
    cols: int = 20,
    seed: int = 23,
) -> list[tuple[float, Terrain]]:
    """Fixed-n shielded-basin terrains with swept wall height —
    the E3 output-size knob."""
    return [
        (
            q,
            shielded_basin_terrain(
                rows=rows, cols=cols, occlusion=q, seed=seed
            ),
        )
        for q in occlusions
    ]
