"""``bench envelope`` — python-vs-numpy kernel comparison.

Times both envelope engines on E9-style workloads (random segment
sets, the Lemma 3.1 construction, a large pairwise merge, batched
``visible_parts`` queries, and the stream-merge ablation inside the
batched build) and writes the rows to ``BENCH_envelope.json`` so
later PRs have a perf trajectory to compare against.

Row kinds (all share the six columns; ``python_ms``/``numpy_ms`` name
the two timed variants):

``build``
    ``build_envelope`` python engine vs numpy engine.
``pairwise-merge``
    One large envelope merge, kernel only.
``visibility``
    ``visible_parts`` of ``m`` query segments against the profile of
    ``m`` segments: scalar per-query loop (``python_ms``) vs one
    batched :func:`~repro.envelope.flat_visibility.batch_visible_parts`
    sweep *including* materialisation back to scalar-API results
    (``numpy_ms``).
``build-stream-merge-ablation``
    The numpy build with the segmented stream merge disabled
    (``python_ms`` column = composite-argsort ordering, PR 1's path)
    vs enabled (``numpy_ms`` column).
``sequential``
    A full front-to-back insert loop (the SequentialHSR inner loop)
    over a churny wide-strip workload whose profile size grows with
    ``m`` — the regime where the tuple splice pays Θ(profile) copying
    per edge.  ``python_ms`` = the ``engine="python"`` reference loop;
    ``numpy_ms`` = the packed single-buffer
    :class:`~repro.envelope.packed.PackedProfile` loop (the shipped
    default live layout).
``sequential-splice-ablation``
    The same insert loop, tuple-splice path under ``engine="numpy"``
    (``python_ms`` column — the pre-flat-profile dispatch path, same
    kernels) vs the packed loop (``numpy_ms`` column): isolates the
    cumulative array-layout fixes (flat splice + packed buffer).
``sequential-fused-ablation``
    The flat-profile insert loop on the *E9 small-profile family*
    (narrow strip, scan-bound windows) with the fused
    visibility+merge kernel of :mod:`repro.envelope.flat_fused`
    disabled (``python_ms`` column — the two-pass locate → visibility
    → merge cascade of PR 3) vs enabled (``numpy_ms`` column):
    isolates the fused single-sweep insert, its hidden/visible
    fast paths and the re-tuned
    :data:`~repro.envelope.engine.FLAT_FUSED_CUTOFF`.
``build-emission-ablation``
    The numpy build with the run-length output emission enabled
    (``numpy_ms`` column, ``USE_RUN_EMISSION=True``) vs the default
    two-pass scatter+compress emission (``python_ms`` column).  An
    honest negative result on the recorded machine: the run emission
    measures slightly *slower*, so the default stays two-pass — see
    ``docs/BENCHMARKS.md``.
``sequential-packed-ablation`` / ``sequential-packed-ablation-wide``
    The packed-profile layout change isolated on the E9 family (plain
    kind) and the wide-strip family (``-wide`` kind): ``python_ms``
    column = the PR-4 fused cascade (immutable
    :class:`~repro.envelope.flat_splice.FlatProfile` concatenate
    splices + array-reduction fast paths,
    ``USE_SCALAR_FASTPATHS=False``); ``numpy_ms`` column = the packed
    single-buffer :class:`~repro.envelope.packed.PackedProfile` loop
    with in-place splices and the scalar small-window fast paths (the
    shipped default — including the compiled insert core when the
    optional extension is built, so on compiled installs this row
    bundles the layout *and* PR-10 compiled-core wins; the
    ``sequential-compiled-ablation`` rows isolate the latter).
``parallel-build-w2`` / ``parallel-build-w4``
    The multi-core divide-and-conquer build
    (:func:`repro.parallel_exec.build_envelope_parallel`, shared-
    memory inputs, pool pre-warmed) with 2 / 4 worker processes
    (``numpy_ms`` column) vs the in-process numpy build (``python_ms``
    column).  Bit-exact by the chunk-parity argument; the speedup
    column only reads above 1 when the machine actually has the
    cores — see the core-count caveat in ``docs/BENCHMARKS.md``.
``service-qps``
    ``m`` viewshed queries through the service façade: sequential
    :meth:`~repro.service.ViewshedSession.query` calls (``python_ms``
    column) vs one coalesced
    :meth:`~repro.service.ViewshedSession.query_batch` launch
    (``numpy_ms`` column) against the same cached horizon.
``phase2-persistent``
    Phase 2 over a PCT built from the E9 segments: ``python_ms`` =
    ``mode="persistent"`` (treap-backed profiles — no flat kernel
    reaches this path), ``numpy_ms`` = ``mode="direct"`` on the numpy
    engine (batched window merges into packed buffers).  The speedup
    column reads "how much the treap bound costs": the honest
    baseline a future flat-native persistent store has to beat.

Engines are timed interleaved (python, numpy, python, ...) and the
per-engine minimum is reported, which keeps the ratio honest on
machines with frequency scaling.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.harness import Table
from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.engine import HAVE_NUMPY
from repro.envelope.merge import merge_envelopes
from repro.envelope.visibility import visible_parts

__all__ = ["run_envelope_bench", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = Path("BENCH_envelope.json")


# The workload families live in repro.scenarios.instances now (the
# declarative scenario matrix is the single source of truth); these
# aliases keep the historical private names and seeds (17 / 29) so
# every recorded row stays reproducible bit-for-bit.
from repro.scenarios.instances import (  # noqa: E402
    e9_segments as _e9_segments,
    wide_strip_segments as _seq_segments,
)


def _time_interleaved(fns: dict[str, "object"], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` seconds per labelled callable, interleaved."""
    best: dict[str, float] = {label: float("inf") for label in fns}
    for _ in range(repeats):
        for label, fn in fns.items():
            # An allocation-heavy variant (the treap column of
            # phase2-persistent) leaves the cyclic-GC generation
            # counters primed; without a reset the *next* variant pays
            # its full collections inside the timed region (measured
            # 2.5-10x inflation on the direct column).  Collect
            # outside the clock so each variant starts clean.
            gc.collect()
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if dt < best[label]:
                best[label] = dt
    return best


def run_envelope_bench(
    *,
    quick: bool = True,
    repeats: Optional[int] = None,
    ms: Optional[Sequence[int]] = None,
    output: Optional[Path] = DEFAULT_OUTPUT,
) -> Table:
    """Compare the envelope kernels; optionally record JSON.

    Pass ``output=None`` to skip writing ``BENCH_envelope.json``.
    """
    if ms is None:
        ms = (256, 1024, 2048) if quick else (256, 1024, 2048, 4096, 8192)
    if repeats is None:
        repeats = 5 if quick else 9

    t = Table(
        "envelope",
        "build_envelope kernel comparison (E9 workload family)",
        ["workload", "m", "env_size", "python_ms", "numpy_ms", "speedup"],
    )
    rows: list[dict] = []

    # Phase-2 persistent-vs-direct, recorded FIRST so the rows match a
    # fresh process: late in the pipeline the direct column inflates
    # 40-70% (allocator/GC state accumulated by fifty earlier rows
    # hits its large per-layer temporaries harder than the rope's
    # small chunk commits), which once flipped the recorded rope ratio
    # below 1.0.  The treap backend is additionally quarantined into
    # its own timing loop: a 20s treap run between pair-mates both
    # warms `pct.envelope_of`'s scalar cache for the rope column and
    # perturbs the direct column (measured swings of +-40% on the
    # pair's ratio).  The rope/direct pair interleaves cleanly; the
    # treap row reuses the pair's direct best as its denominator.
    if HAVE_NUMPY:
        from repro.hsr.pct import build_pct
        from repro.hsr.phase2 import run_phase2
        from repro.ordering.separator import SeparatorTree

        m_p2 = max(ms)
        p2_segs = _e9_segments(m_p2)
        p2_tree = SeparatorTree(list(range(m_p2)))
        pct = build_pct(p2_tree, p2_segs, engine="numpy")
        p2_repeats = max(1, repeats // 3)
        best = _time_interleaved(
            {
                "rope": lambda: run_phase2(
                    pct, p2_segs, mode="persistent", backend="rope"
                ),
                "direct": lambda: run_phase2(
                    pct, p2_segs, mode="direct", engine="numpy"
                ),
            },
            p2_repeats,
        )
        best_treap = _time_interleaved(
            {
                "treap": lambda: run_phase2(
                    pct, p2_segs, mode="persistent", backend="treap"
                ),
            },
            p2_repeats,
        )
        rows.append(
            dict(
                workload="phase2-persistent",
                m=m_p2,
                env_size=pct.total_profile_pieces(),
                python_ms=best_treap["treap"] * 1e3,
                numpy_ms=best["direct"] * 1e3,
                speedup=best_treap["treap"] / best["direct"],
            )
        )
        t.add(**rows[-1])
        rows.append(
            dict(
                workload="phase2-rope",
                m=m_p2,
                env_size=pct.total_profile_pieces(),
                python_ms=best["rope"] * 1e3,
                numpy_ms=best["direct"] * 1e3,
                speedup=best["rope"] / best["direct"],
            )
        )
        t.add(**rows[-1])
        del pct, p2_segs, p2_tree

    for m in ms:
        segs = _e9_segments(m)
        env_size = build_envelope(segs, engine="python").envelope.size
        if HAVE_NUMPY:
            best = _time_interleaved(
                {
                    "python": lambda: build_envelope(segs, engine="python"),
                    "numpy": lambda: build_envelope(segs, engine="numpy"),
                },
                repeats,
            )
            speedup = best["python"] / best["numpy"]
            numpy_ms: Optional[float] = best["numpy"] * 1e3
        else:  # pragma: no cover - numpy ships in the toolchain
            best = _time_interleaved(
                {"python": lambda: build_envelope(segs, engine="python")},
                repeats,
            )
            numpy_ms = None
            speedup = None  # keep the JSON strict-parseable
        row = dict(
            workload="build",
            m=m,
            env_size=env_size,
            python_ms=best["python"] * 1e3,
            numpy_ms=numpy_ms,
            speedup=speedup,
        )
        rows.append(row)
        t.add(**row)

    # One large pairwise merge: the kernel in isolation, no recursion.
    m_pair = max(ms)
    segs = _e9_segments(m_pair)
    a = build_envelope(segs[: m_pair // 2], engine="python").envelope
    b = build_envelope(segs[m_pair // 2 :], engine="python").envelope
    if HAVE_NUMPY:
        from repro.envelope.flat import FlatEnvelope, merge_envelopes_flat

        fa, fb = FlatEnvelope.from_envelope(a), FlatEnvelope.from_envelope(b)
        best = _time_interleaved(
            {
                "python": lambda: merge_envelopes(a, b),
                "numpy": lambda: merge_envelopes_flat(fa, fb),
            },
            repeats,
        )
        row = dict(
            workload="pairwise-merge",
            m=a.size + b.size,
            env_size=merge_envelopes(a, b).envelope.size,
            python_ms=best["python"] * 1e3,
            numpy_ms=best["numpy"] * 1e3,
            speedup=best["python"] / best["numpy"],
        )
        rows.append(row)
        t.add(**row)

    # Batched visibility: m queries against the profile of m segments.
    for m in ms:
        segs = _e9_segments(m)
        env = build_envelope(segs, engine="python").envelope
        queries = _e9_segments(m, seed=101)

        def scalar_vis(env=env, queries=queries):
            for q in queries:
                visible_parts(q, env)

        if HAVE_NUMPY:
            from repro.envelope.flat import FlatEnvelope
            from repro.envelope.flat_visibility import (
                batch_visible_parts,
            )

            fenv = FlatEnvelope.from_envelope(env)

            def batched_vis(fenv=fenv, queries=queries):
                batch_visible_parts(fenv, queries).results()

            best = _time_interleaved(
                {"python": scalar_vis, "numpy": batched_vis}, repeats
            )
            numpy_ms = best["numpy"] * 1e3
            speedup = best["python"] / best["numpy"]
        else:  # pragma: no cover - numpy ships in the toolchain
            best = _time_interleaved({"python": scalar_vis}, repeats)
            numpy_ms = None
            speedup = None  # keep the JSON strict-parseable
        row = dict(
            workload="visibility",
            m=m,
            env_size=env.size,
            python_ms=best["python"] * 1e3,
            numpy_ms=numpy_ms,
            speedup=speedup,
        )
        rows.append(row)
        t.add(**row)

    # Stream-merge ablation inside the batched build (largest size):
    # python_ms column = composite argsort (PR 1), numpy_ms = merge.
    if HAVE_NUMPY:
        import repro.envelope.flat as flat_mod

        m_abl = max(ms)
        segs = _e9_segments(m_abl)
        env_size = build_envelope(segs, engine="numpy").envelope.size

        def build_with(attr, toggle, segs=segs):
            def run():
                old = getattr(flat_mod, attr)
                setattr(flat_mod, attr, toggle)
                try:
                    build_envelope(segs, engine="numpy")
                finally:
                    setattr(flat_mod, attr, old)

            return run

        best = _time_interleaved(
            {
                "argsort": build_with("USE_STREAM_MERGE", False),
                "merge": build_with("USE_STREAM_MERGE", True),
            },
            repeats,
        )
        row = dict(
            workload="build-stream-merge-ablation",
            m=m_abl,
            env_size=env_size,
            python_ms=best["argsort"] * 1e3,
            numpy_ms=best["merge"] * 1e3,
            speedup=best["argsort"] / best["merge"],
        )
        rows.append(row)
        t.add(**row)

        # Run-length emission ablation inside the batched build:
        # python_ms column = default two-pass scatter+compress
        # emission, numpy_ms = direct run-boundary emission.
        best = _time_interleaved(
            {
                "two-pass": build_with("USE_RUN_EMISSION", False),
                "run-emit": build_with("USE_RUN_EMISSION", True),
            },
            repeats,
        )
        row = dict(
            workload="build-emission-ablation",
            m=m_abl,
            env_size=env_size,
            python_ms=best["two-pass"] * 1e3,
            numpy_ms=best["run-emit"] * 1e3,
            speedup=best["two-pass"] / best["run-emit"],
        )
        rows.append(row)
        t.add(**row)

        # Sweep-scratch ablation inside the batched build (ROADMAP
        # item 5): python_ms column = fresh per-level event buffers,
        # numpy_ms = pooled scratch arena reused across D&C levels.
        best = _time_interleaved(
            {
                "fresh": build_with("USE_SWEEP_SCRATCH", False),
                "pooled": build_with("USE_SWEEP_SCRATCH", True),
            },
            repeats,
        )
        row = dict(
            workload="build-sweep-scratch-ablation",
            m=m_abl,
            env_size=env_size,
            python_ms=best["fresh"] * 1e3,
            numpy_ms=best["pooled"] * 1e3,
            speedup=best["fresh"] / best["pooled"],
        )
        rows.append(row)
        t.add(**row)

        # Group-offset ablation inside the batched build (ROADMAP
        # item 5, last named candidate): python_ms column =
        # searchsorted-derived unique-bound offsets + bincount ops,
        # numpy_ms = kept-prefix-sum offsets + offset-arithmetic
        # intervals on the stream-merge path.
        best = _time_interleaved(
            {
                "searchsorted": build_with("USE_GROUP_OFFSET_PREFIX", False),
                "prefix": build_with("USE_GROUP_OFFSET_PREFIX", True),
            },
            repeats,
        )
        row = dict(
            workload="build-group-offset-ablation",
            m=m_abl,
            env_size=env_size,
            python_ms=best["searchsorted"] * 1e3,
            numpy_ms=best["prefix"] * 1e3,
            speedup=best["searchsorted"] / best["prefix"],
        )
        rows.append(row)
        t.add(**row)

    # Sequential insert loops on the churny wide-strip family: the
    # python engine vs the flat-native profile, plus the splice
    # ablation (tuple path vs flat path under the same numpy kernels).
    # Heavier per repeat than the kernel rows (the tuple path is the
    # quadratic regime being measured), so fewer repeats.
    seq_repeats = max(1, repeats // 3)
    from repro.envelope.splice import insert_segment

    def tuple_loop(segs, engine):
        def run():
            env = Envelope.empty()
            for s in segs:
                env = insert_segment(env, s, engine=engine).envelope

        return run

    if HAVE_NUMPY:
        import repro.envelope.flat_splice as splice_mod
        from repro.envelope.flat_splice import (
            FlatProfile,
            insert_segment_flat,
        )
        from repro.envelope.packed import PackedProfile

        def packed_loop(segs):
            # The shipped default live layout: in-place splices into
            # one packed buffer + scalar small-window fast paths.
            def run():
                prof = PackedProfile.empty()
                for s in segs:
                    prof = insert_segment_flat(prof, s).profile

            return run

        def pr4_loop(segs):
            # The PR-4 fused cascade: immutable FlatProfile
            # concatenate splices, array-reduction fast paths on
            # every window.
            def run():
                old = splice_mod.USE_SCALAR_FASTPATHS
                splice_mod.USE_SCALAR_FASTPATHS = False
                try:
                    prof = FlatProfile.empty()
                    for s in segs:
                        prof = insert_segment_flat(prof, s).profile
                finally:
                    splice_mod.USE_SCALAR_FASTPATHS = old

            return run

        from repro.envelope import _ccore

        def packed_nocc_loop(segs):
            # The packed loop with the compiled core off: the PR-5
            # scalar/vectorized cascade on the packed buffer — the
            # compiled-ablation baseline (and exactly what a
            # no-compiler install runs).
            def run():
                old = splice_mod.USE_COMPILED_INSERT
                splice_mod.USE_COMPILED_INSERT = False
                try:
                    prof = PackedProfile.empty()
                    for s in segs:
                        prof = insert_segment_flat(prof, s).profile
                finally:
                    splice_mod.USE_COMPILED_INSERT = old

            return run

    for m in ms:
        segs = _seq_segments(m)

        if HAVE_NUMPY:
            # Final profile size via the packed loop (bit-identical to
            # the python engine's, several times cheaper than an extra
            # untimed run of the quadratic tuple path).
            prof = PackedProfile.empty()
            for s in segs:
                prof = insert_segment_flat(prof, s).profile
            env_size = prof.size

            loops = {
                "python": tuple_loop(segs, "python"),
                "tuple-numpy": tuple_loop(segs, "numpy"),
                "pr4": pr4_loop(segs),
                "packed": packed_loop(segs),
            }
            if _ccore.HAVE_CCORE:
                loops["packed-nocc"] = packed_nocc_loop(segs)
            best = _time_interleaved(loops, seq_repeats)
            rows.append(
                dict(
                    workload="sequential",
                    m=m,
                    env_size=env_size,
                    python_ms=best["python"] * 1e3,
                    numpy_ms=best["packed"] * 1e3,
                    speedup=best["python"] / best["packed"],
                )
            )
            t.add(**rows[-1])
            rows.append(
                dict(
                    workload="sequential-splice-ablation",
                    m=m,
                    env_size=env_size,
                    python_ms=best["tuple-numpy"] * 1e3,
                    numpy_ms=best["packed"] * 1e3,
                    speedup=best["tuple-numpy"] / best["packed"],
                )
            )
            t.add(**rows[-1])
            rows.append(
                dict(
                    workload="sequential-packed-ablation-wide",
                    m=m,
                    env_size=env_size,
                    python_ms=best["pr4"] * 1e3,
                    numpy_ms=best["packed"] * 1e3,
                    speedup=best["pr4"] / best["packed"],
                )
            )
            t.add(**rows[-1])
            if "packed-nocc" in best:
                rows.append(
                    dict(
                        workload="sequential-compiled-ablation-wide",
                        m=m,
                        env_size=env_size,
                        python_ms=best["packed-nocc"] * 1e3,
                        numpy_ms=best["packed"] * 1e3,
                        speedup=best["packed-nocc"] / best["packed"],
                    )
                )
                t.add(**rows[-1])
        else:  # pragma: no cover - numpy ships in the toolchain
            env = Envelope.empty()
            for s in segs:
                env = insert_segment(env, s, engine="python").envelope
            best = _time_interleaved(
                {"python": tuple_loop(segs, "python")}, seq_repeats
            )
            rows.append(
                dict(
                    workload="sequential",
                    m=m,
                    env_size=env.size,
                    python_ms=best["python"] * 1e3,
                    numpy_ms=None,
                    speedup=None,
                )
            )
            t.add(**rows[-1])

    # Chunked-gap-buffer ablation on the wide-strip family (largest
    # size): python_ms column = packed single buffer, numpy_ms = the
    # rope-style chunked live layout promoted at a low cutoff so the
    # whole run exercises it.  Bit-exact either way; measures the
    # two-level lookup tax vs the bounded chunk-local shifts.
    if HAVE_NUMPY:
        import repro.envelope.engine as engine_mod

        m_abl = max(ms)
        segs = _seq_segments(m_abl)
        env_size = None

        def chunked_loop(toggle, segs=segs):
            def run():
                old = engine_mod.USE_CHUNKED_PROFILE
                old_cut = engine_mod.CHUNKED_PROFILE_CUTOFF
                engine_mod.USE_CHUNKED_PROFILE = toggle
                engine_mod.CHUNKED_PROFILE_CUTOFF = 64
                try:
                    prof = PackedProfile.empty()
                    for s in segs:
                        prof = insert_segment_flat(prof, s).profile
                finally:
                    engine_mod.USE_CHUNKED_PROFILE = old
                    engine_mod.CHUNKED_PROFILE_CUTOFF = old_cut
                return prof

            return run

        env_size = chunked_loop(False)().size
        best = _time_interleaved(
            {
                "packed": chunked_loop(False),
                "chunked": chunked_loop(True),
            },
            seq_repeats,
        )
        row = dict(
            workload="sequential-chunked-ablation",
            m=m_abl,
            env_size=env_size,
            python_ms=best["packed"] * 1e3,
            numpy_ms=best["chunked"] * 1e3,
            speedup=best["packed"] / best["chunked"],
        )
        rows.append(row)
        t.add(**row)

    # Fused-insert ablation on the E9 small-profile family: the
    # flat-profile loop with the fused visibility+merge kernel off
    # (PR 3's two-pass cascade) vs on.  The E9 family is the
    # scan-bound regime the fused kernel targets (windows far below
    # the old batched-visibility cutoff).
    if HAVE_NUMPY:
        import repro.envelope.flat_splice as splice_mod
        from repro.envelope.flat_splice import (
            FlatProfile,
            insert_segment_flat,
        )

        def fused_loop(toggle, segs):
            def run():
                old = splice_mod.USE_FUSED_INSERT
                splice_mod.USE_FUSED_INSERT = toggle
                try:
                    prof = FlatProfile.empty()
                    for s in segs:
                        prof = insert_segment_flat(prof, s).profile
                finally:
                    splice_mod.USE_FUSED_INSERT = old

            return run

        for m in ms:
            segs = _e9_segments(m)
            prof = FlatProfile.empty()
            for s in segs:
                prof = insert_segment_flat(prof, s).profile
            best = _time_interleaved(
                {
                    "two-pass": fused_loop(False, segs),
                    "fused": fused_loop(True, segs),
                },
                seq_repeats,
            )
            rows.append(
                dict(
                    workload="sequential-fused-ablation",
                    m=m,
                    env_size=prof.size,
                    python_ms=best["two-pass"] * 1e3,
                    numpy_ms=best["fused"] * 1e3,
                    speedup=best["two-pass"] / best["fused"],
                )
            )
            t.add(**rows[-1])

            # Packed-layout ablation on the same E9 family: the PR-4
            # fused cascade vs the packed single-buffer loop — plus
            # the compiled-core ablation (packed with the C core off
            # vs on) from the same interleave.
            loops = {
                "pr4": pr4_loop(segs),
                "packed": packed_loop(segs),
            }
            if _ccore.HAVE_CCORE:
                loops["packed-nocc"] = packed_nocc_loop(segs)
            best = _time_interleaved(loops, seq_repeats)
            rows.append(
                dict(
                    workload="sequential-packed-ablation",
                    m=m,
                    env_size=prof.size,
                    python_ms=best["pr4"] * 1e3,
                    numpy_ms=best["packed"] * 1e3,
                    speedup=best["pr4"] / best["packed"],
                )
            )
            t.add(**rows[-1])
            if "packed-nocc" in best:
                rows.append(
                    dict(
                        workload="sequential-compiled-ablation",
                        m=m,
                        env_size=prof.size,
                        python_ms=best["packed-nocc"] * 1e3,
                        numpy_ms=best["packed"] * 1e3,
                        speedup=best["packed-nocc"] / best["packed"],
                    )
                )
                t.add(**rows[-1])

    # Guard-dispatch ablation (reliability layer): the shipped packed
    # insert loop with the guards on (the default) vs off
    # (REPRO_GUARDS=0, the zero-overhead baseline).  Ship gate for
    # default-on guards: overhead <= 3% at the largest size, both
    # families (docs/BENCHMARKS.md).
    if HAVE_NUMPY:
        from repro.reliability import guard as guard_mod

        def guard_loop(enabled, segs):
            def run():
                old = guard_mod.GUARDS_ENABLED
                guard_mod.GUARDS_ENABLED = enabled
                try:
                    prof = PackedProfile.empty()
                    for s in segs:
                        prof = insert_segment_flat(prof, s).profile
                finally:
                    guard_mod.GUARDS_ENABLED = old

            return run

        for workload, family in (
            ("sequential-guard-ablation", _e9_segments),
            ("sequential-guard-ablation-wide", _seq_segments),
        ):
            for m in ms:
                segs = family(m)
                prof = PackedProfile.empty()
                for s in segs:
                    prof = insert_segment_flat(prof, s).profile
                best = _time_interleaved(
                    {
                        "off": guard_loop(False, segs),
                        "on": guard_loop(True, segs),
                    },
                    seq_repeats,
                )
                rows.append(
                    dict(
                        workload=workload,
                        m=m,
                        env_size=prof.size,
                        python_ms=best["off"] * 1e3,
                        numpy_ms=best["on"] * 1e3,
                        speedup=best["off"] / best["on"],
                    )
                )
                t.add(**rows[-1])

    # (phase2-persistent / phase2-rope are recorded at the top of this
    # function — see the fresh-process rationale there.)

    # Multi-core build scaling: the in-process numpy build vs the
    # shared-memory process pool at 2 and 4 workers (largest size).
    # Honest rows: on a single-core machine the pool pays IPC without
    # gaining cores, so the speedup column reads below 1 there — the
    # correctness story (bit-exact parity) is CI's 2-worker leg, and
    # the scaling decomposition lives in docs/BENCHMARKS.md.
    if HAVE_NUMPY:
        from repro.geometry.primitives import EPS
        from repro.parallel_exec import build_envelope_parallel

        m_par = max(ms)
        segs = _e9_segments(m_par)
        env_size = build_envelope(segs, engine="numpy").envelope.size
        for w in (2, 4):
            # Warm the pool so fork cost is not billed to a repeat.
            warm = build_envelope_parallel(
                segs, eps=EPS, workers=w, min_segments=0
            )
            if warm is None:  # pragma: no cover - platform without fork
                continue
            best = _time_interleaved(
                {
                    "inproc": lambda: build_envelope(segs, engine="numpy"),
                    "pool": lambda w=w: build_envelope_parallel(
                        segs, eps=EPS, workers=w, min_segments=0
                    ),
                },
                seq_repeats,
            )
            rows.append(
                dict(
                    workload=f"parallel-build-w{w}",
                    m=m_par,
                    env_size=env_size,
                    python_ms=best["inproc"] * 1e3,
                    numpy_ms=best["pool"] * 1e3,
                    speedup=best["inproc"] / best["pool"],
                )
            )
            t.add(**rows[-1])

    # Service throughput: m coalesced queries through one
    # ViewshedSession.query_batch launch vs m sequential query()
    # calls against the same cached horizon (answers bit-exact).
    if HAVE_NUMPY:
        from repro.service import EnvelopeCache, ViewshedSession
        from repro.terrain.generators import fractal_terrain

        # size=65: a horizon large enough that per-query dispatch
        # overhead (the thing coalescing amortises) is the dominant
        # sequential cost, as in the service's intended deployment.
        terrain = fractal_terrain(size=65, seed=7)
        session = ViewshedSession(terrain, cache=EnvelopeCache())
        horizon = session.envelope()
        ys = [v.y for v in terrain.vertices]
        lo, hi = min(ys), max(ys)
        span = hi - lo
        m_q = max(ms)
        rng = random.Random(53)
        queries = []
        for _ in range(m_q):
            a = rng.uniform(lo, hi - span / 16)
            queries.append(
                (a, rng.uniform(-5, 15), a + span / 16, rng.uniform(-5, 15))
            )

        def sequential_queries():
            for q in queries:
                session.query(q)

        best = _time_interleaved(
            {
                "sequential": sequential_queries,
                "batched": lambda: session.query_batch(queries),
            },
            seq_repeats,
        )
        rows.append(
            dict(
                workload="service-qps",
                m=m_q,
                env_size=horizon.size,
                python_ms=best["sequential"] * 1e3,
                numpy_ms=best["batched"] * 1e3,
                speedup=best["sequential"] / best["batched"],
            )
        )
        t.add(**rows[-1])

    # Scenario-matrix rows (declarative; see repro.scenarios and
    # docs/SCENARIOS.md): every bench-role scenario of the packaged
    # default spec, timed through the same interleaved best-of loop.
    # Appended LAST on purpose — the phase2 pair must keep its
    # fresh-process slot at the top (see the rationale there), and
    # these rows feed the perf gate, which compares speedup *ratios*,
    # not absolute times, so late-pipeline allocator state is benign.
    if HAVE_NUMPY:
        from repro.scenarios.instances import iter_bench_rows
        from repro.scenarios.spec import default_spec

        max_m = max(ms)
        for row in iter_bench_rows(
            default_spec(),
            repeats=seq_repeats,
            time_fn=_time_interleaved,
            max_m=max_m,
        ):
            rows.append(row)
            t.add(**row)
        if quick:
            t.notes.append(
                "quick mode skips scenario instances with a declared"
                " size factor above %d — run --full to record every"
                " pinned perf-gate row" % max_m
            )

    t.notes.append(
        "scenario:* rows expand the bench-role scenarios of the"
        " packaged default spec (repro/scenarios/"
        "default_scenarios.json); python_ms/numpy_ms time the"
        " scenario's baseline/variant configs, best-of-%d"
        " interleaved, and the pinned instances back `repro"
        " perf-gate`" % seq_repeats
    )
    t.notes.append(
        "engines produce identical pieces/crossings/ops (enforced by"
        " tests/test_envelope_flat.py and"
        " tests/test_envelope_flat_visibility.py); choose on wall"
        " clock alone"
    )
    t.notes.append(
        "visibility numpy_ms includes materialising scalar-API"
        " results; the raw array sweep is faster still"
    )
    t.notes.append(
        "build-stream-merge-ablation compares the numpy build with"
        " the segmented stream merge off (python_ms column, composite"
        " argsort) vs on (numpy_ms column)"
    )
    t.notes.append(
        "sequential rows run the front-to-back insert loop on a"
        " wide-strip workload (profile ~ m pieces, seed 29):"
        " python engine vs the packed single-buffer PackedProfile"
        " loop (the shipped default); sequential-splice-ablation"
        " times the tuple-splice path under engine='numpy'"
        " (pre-flat-profile dispatch, same kernels) vs the packed"
        " loop, best-of-%d" % seq_repeats
    )
    t.notes.append(
        "sequential-fused-ablation runs the flat-profile insert loop"
        " on the E9 small-profile family (seed 17): two-pass"
        " visibility+merge cascade (python_ms column) vs the fused"
        " single-sweep kernel of repro.envelope.flat_fused (numpy_ms"
        " column), best-of-%d" % seq_repeats
    )
    t.notes.append(
        "build-emission-ablation compares the numpy build's default"
        " two-pass scatter+compress output emission (python_ms"
        " column) vs the run-boundary emission (numpy_ms column);"
        " values below 1 mean the run emission lost and the default"
        " stays two-pass"
    )
    t.notes.append(
        "sequential-packed-ablation (E9 family) and"
        " sequential-packed-ablation-wide (wide-strip family) compare"
        " the PR-4 fused cascade (FlatProfile concatenate splices +"
        " array-reduction fast paths, python_ms column) vs the packed"
        " single-buffer PackedProfile loop with in-place splices"
        " (numpy_ms column), best-of-%d" % seq_repeats
    )
    t.notes.append(
        "sequential-compiled-ablation (E9 family) and"
        " sequential-compiled-ablation-wide (wide-strip family)"
        " compare the packed loop with the compiled fused-insert core"
        " off (python_ms column — the scalar/vectorized cascade a"
        " no-compiler install runs) vs on (numpy_ms column, one C"
        " call per insert); rows recorded only when the optional"
        " extension is built, best-of-%d" % seq_repeats
    )
    t.notes.append(
        "build-group-offset-ablation compares the stream-merge"
        " sweep's searchsorted-derived group offsets (python_ms"
        " column) vs the kept-prefix-sum derivation (numpy_ms"
        " column); values near or below 1 mean the prefix path lost"
        " and the default stays searchsorted"
    )
    t.notes.append(
        "phase2-persistent times run_phase2 mode='persistent'"
        " backend='treap' (python_ms column) vs mode='direct' on the"
        " numpy engine (numpy_ms column) over a PCT of the E9"
        " segments; the ratio quantifies the treap bound no flat"
        " kernel reaches — the historical baseline the rope replaces"
    )
    t.notes.append(
        "phase2-rope times the same persistent run on the default"
        " rope backend (python_ms column) vs the same direct run"
        " (numpy_ms column); the per-layer merges and leaf visibility"
        " run through the batched numpy kernels on rope chunk"
        " windows, so the speedup column is the honest"
        " persistence-overhead ratio (ROADMAP target ~1.5)"
    )
    t.notes.append(
        "sequential-chunked-ablation (wide-strip family, largest"
        " size) times the packed single-buffer live profile"
        " (python_ms column) vs the rope-style ChunkedProfile"
        " gap-buffer layout promoted at cutoff 64 (numpy_ms column);"
        " bit-exact either way — the recorded machine measures the"
        " chunked layout slower (two-level Python lookups beat the"
        " packed memmove only beyond bench sizes), so"
        " USE_CHUNKED_PROFILE defaults off"
    )
    t.notes.append(
        "build-sweep-scratch-ablation times the batched build with"
        " fresh per-level event buffers (python_ms column) vs the"
        " pooled _SweepScratch arena (numpy_ms column); measured"
        " ~0.98x on the recorded machine, so USE_SWEEP_SCRATCH"
        " defaults off — third consecutive negative on this phase"
    )
    t.notes.append(
        "sequential-guard-ablation (E9 family) and"
        " sequential-guard-ablation-wide (wide-strip family) run the"
        " shipped packed insert loop with the reliability guards off"
        " (python_ms column, REPRO_GUARDS=0 baseline) vs on (numpy_ms"
        " column, the default); speedup just below 1 is the guard"
        " overhead — ship gate for default-on guards is <= 3%% at the"
        " largest size, best-of-%d" % seq_repeats
    )
    t.notes.append(
        "parallel-build-wN times build_envelope_parallel with N"
        " worker processes (shared-memory inputs, floors zeroed,"
        " pool pre-warmed) against the in-process numpy build"
        " (python_ms column); results are bit-exact"
        " (tests/test_parallel_exec.py).  Speedup below 1 means the"
        " recording machine had fewer than N schedulable cores and"
        " the row is measuring IPC overhead — see docs/BENCHMARKS.md"
        " for the core-count caveat and scaling decomposition"
    )
    t.notes.append(
        "service-qps times m sequential ViewshedSession.query calls"
        " (python_ms column) vs one coalesced query_batch launch"
        " (numpy_ms column) against the same cached fractal-terrain"
        " horizon; answers are bit-exact (tests/test_service.py)"
    )
    t.notes.append(
        "timings are best-of-%d, engines interleaved" % repeats
    )

    if output is not None:
        payload = {
            "suite": "envelope-kernel",
            "workload": "E9-style random segments (seed 17)",
            "repeats": repeats,
            "python_version": platform.python_version(),
            "have_numpy": HAVE_NUMPY,
            "rows": rows,
        }
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
        t.notes.append(f"recorded to {output}")

    return t
