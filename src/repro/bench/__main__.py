"""CLI: regenerate every experiment table.

Usage::

    python -m repro.bench              # quick sweeps, all experiments
    python -m repro.bench --full       # full sweeps
    python -m repro.bench E3 E5        # selected experiments
    python -m repro.bench envelope     # python-vs-numpy kernel timings
                                       # (writes BENCH_envelope.json)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's claims as measured tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=(
            "experiment ids (default: all of %s); the special name"
            " 'envelope' runs the python-vs-numpy kernel comparison"
            % (ALL_EXPERIMENTS,)
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size sweeps (several minutes) instead of quick ones",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "JSON output path for the 'envelope' comparison"
            " (default: BENCH_envelope.json in the current directory)"
        ),
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(ALL_EXPERIMENTS)
    for name in names:
        t0 = time.perf_counter()
        if name == "envelope":
            from repro.bench.envelope_bench import (
                DEFAULT_OUTPUT,
                run_envelope_bench,
            )

            table = run_envelope_bench(
                quick=not args.full,
                output=args.output or DEFAULT_OUTPUT,
            )
        else:
            table = run_experiment(name, quick=not args.full)
        dt = time.perf_counter() - t0
        print(table.format())
        print(f"[{name} completed in {dt:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
