"""CLI: regenerate every experiment table.

Usage::

    python -m repro.bench            # quick sweeps, all experiments
    python -m repro.bench --full     # full sweeps
    python -m repro.bench E3 E5      # selected experiments
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's claims as measured tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all of %s)" % (ALL_EXPERIMENTS,),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size sweeps (several minutes) instead of quick ones",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(ALL_EXPERIMENTS)
    for name in names:
        t0 = time.perf_counter()
        table = run_experiment(name, quick=not args.full)
        dt = time.perf_counter() - t0
        print(table.format())
        print(f"[{name} completed in {dt:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
