"""E1 — Theorem 3.1 depth bound: O(log^4 n).

Times a full ParallelHSR run on the mid-size scaling workload and
regenerates the E1 table (depth / log^4 n flat in n).
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR
from repro.pram.tracker import PramTracker


def test_e1_parallel_hsr_depth(benchmark, fractal_medium):
    def run():
        tracker = PramTracker()
        ParallelHSR(mode="persistent").run(fractal_medium, tracker=tracker)
        return tracker

    tracker = benchmark(run)
    table = run_experiment("E1", quick=True)
    attach_table(benchmark, table)
    ratios = table.column("depth/log4n")
    assert ratios[-1] <= max(ratios[0], 1.0) * 1.5
    benchmark.extra_info["depth"] = tracker.depth
    benchmark.extra_info["work"] = tracker.work
