"""E12 — object-space vs image-space z-buffer baseline."""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.sequential import SequentialHSR
from repro.hsr.zbuffer import ZBufferHSR


def test_e12_object_space(benchmark, fractal_small):
    res = benchmark(lambda: SequentialHSR().run(fractal_small))
    benchmark.extra_info["k"] = res.k


@pytest.mark.parametrize("resolution", [64, 256])
def test_e12_zbuffer(benchmark, fractal_small, resolution):
    zb = ZBufferHSR(width=resolution, height=resolution)
    benchmark(lambda: zb.run(fractal_small))
    benchmark.extra_info["pixels"] = resolution * resolution


def test_e12_table(benchmark):
    table = benchmark.pedantic(
        lambda: run_experiment("E12", quick=True), rounds=1, iterations=1
    )
    attach_table(benchmark, table)
    ratios = [
        row["len_ratio"] for row in table.rows if row["method"] == "z-buffer"
    ]
    assert abs(ratios[-1] - 1.0) < 0.25
