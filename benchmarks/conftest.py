"""Shared fixtures for the benchmark suite.

Each ``bench_e*.py`` regenerates one DESIGN.md §5 experiment: it times
the operation under study with pytest-benchmark and attaches the
experiment's reproduction table to ``benchmark.extra_info`` so a
captured run carries the full evidence.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.terrain.generators import fractal_terrain, valley_terrain


@pytest.fixture(scope="session")
def fractal_small():
    return fractal_terrain(size=17, seed=11)


@pytest.fixture(scope="session")
def fractal_medium():
    return fractal_terrain(size=33, seed=11)


@pytest.fixture(scope="session")
def valley_medium():
    return valley_terrain(rows=33, cols=33, seed=11)


def attach_table(benchmark, table) -> None:
    """Store an experiment table in the benchmark record."""
    benchmark.extra_info["experiment"] = table.name
    benchmark.extra_info["table"] = table.format()
