"""E8 — Lemma 2.1/2.2 scheduling: speedup curves (cost model) and real
process-pool Phase-1 execution.

The PRAM speedup curve comes from the cost model (the GIL makes
thread-level emulation meaningless — DESIGN.md §2); the process-pool
benchmark shows genuine multi-core execution of a Phase-1 layer,
including the honest serialisation overhead.
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR
from repro.pram.pool import ProcessBackend, available_workers


def test_e8_speedup_table(benchmark):
    table = benchmark.pedantic(
        lambda: run_experiment("E8", quick=True), rounds=1, iterations=1
    )
    attach_table(benchmark, table)
    speedups = table.column("speedup")
    assert speedups[0] == 1.0 or abs(speedups[0] - 1.0) < 1e-9
    assert speedups[-1] > speedups[0]


def test_e8_serial_phase1(benchmark, fractal_medium):
    benchmark(lambda: ParallelHSR().run(fractal_medium))


def test_e8_process_pool_phase1(benchmark, fractal_medium):
    workers = min(4, available_workers())
    with ProcessBackend(workers=workers) as backend:
        res = benchmark(
            lambda: ParallelHSR(backend=backend).run(fractal_medium)
        )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["k"] = res.k
