"""E3 — output sensitivity: cost tracks k at fixed n; the crossover
against the Θ(n²) baseline.

Benchmarks the parallel algorithm on the most- and least-occluded
shielded-basin instances (same n, very different k) so the timer
itself exhibits the sensitivity, and regenerates the E3 table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR
from repro.terrain.generators import shielded_basin_terrain


@pytest.fixture(scope="module")
def basins():
    open_b = shielded_basin_terrain(rows=20, cols=20, occlusion=0.0, seed=23)
    shut_b = shielded_basin_terrain(rows=20, cols=20, occlusion=1.6, seed=23)
    return open_b, shut_b


def test_e3_open_basin_large_k(benchmark, basins):
    open_b, _ = basins
    res = benchmark(lambda: ParallelHSR(mode="acg").run(open_b))
    benchmark.extra_info["k"] = res.k


def test_e3_shut_basin_small_k(benchmark, basins):
    _, shut_b = basins
    res = benchmark(lambda: ParallelHSR(mode="acg").run(shut_b))
    benchmark.extra_info["k"] = res.k


def test_e3_table(benchmark, basins):
    table = benchmark.pedantic(
        lambda: run_experiment("E3", quick=True), rounds=1, iterations=1
    )
    attach_table(benchmark, table)
    ks = table.column("k")
    naive = table.column("naive_ops")
    assert ks[-1] < ks[0] / 2
    assert abs(naive[-1] - naive[0]) <= 0.2 * naive[0]
