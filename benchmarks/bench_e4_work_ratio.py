"""E4 — Remark after Theorem 3.1: parallel work within O(log n) of the
sequential output-sensitive algorithm."""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.sequential import SequentialHSR


def test_e4_sequential_baseline(benchmark, fractal_medium):
    res = benchmark(lambda: SequentialHSR().run(fractal_medium))
    benchmark.extra_info["seq_ops"] = res.stats.ops
    table = run_experiment("E4", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("ratio/log_n")) <= 3.0
