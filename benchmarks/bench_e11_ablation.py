"""E11 — ablation: direct vs persistent vs ACG Phase-2 engines."""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR


@pytest.mark.parametrize("mode", ["direct", "persistent", "acg"])
def test_e11_mode(benchmark, fractal_small, mode):
    res = benchmark(lambda: ParallelHSR(mode=mode).run(fractal_small))
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["k"] = res.k
    benchmark.extra_info["phase2_ops"] = res.stats.extra["phase2_ops"]


def test_e11_table(benchmark):
    table = benchmark.pedantic(
        lambda: run_experiment("E11", quick=True), rounds=1, iterations=1
    )
    attach_table(benchmark, table)
