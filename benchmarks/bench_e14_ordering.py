"""E14 — front-to-back ordering substrate (Fact 1's role)."""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.ordering.sweep import front_to_back_order


def test_e14_ordering_sweep(benchmark, fractal_medium):
    order = benchmark(lambda: front_to_back_order(fractal_medium))
    assert len(order) == fractal_medium.n_edges
    table = run_experiment("E14", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("constraints/n")) <= 3.5
