"""E13 — perspective projection (paper §2)."""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR
from repro.terrain.perspective import Viewpoint, perspective_transform


def test_e13_perspective_pipeline(benchmark, fractal_small):
    xmax = max(v.x for v in fractal_small.vertices)
    z_hi = fractal_small.height_range()[1]
    view = Viewpoint(xmax * 1.2 + 1.0, 0.0, z_hi * 1.5)

    def run():
        scene = perspective_transform(fractal_small, view)
        return ParallelHSR().run(scene)

    res = benchmark(run)
    benchmark.extra_info["k"] = res.k
    table = run_experiment("E13", quick=True)
    attach_table(benchmark, table)
    assert all(table.column("engines_agree"))
    persp_ks = [
        row["k"] for row in table.rows if row["view"] == "perspective"
    ]
    assert persp_ks == sorted(persp_ks)  # k grows with viewpoint height
