"""E2 — Theorem 3.1 work bound: O((n + k) log^3 n)."""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR
from repro.pram.tracker import PramTracker


def test_e2_parallel_hsr_work(benchmark, valley_medium):
    def run():
        tracker = PramTracker()
        ParallelHSR(mode="persistent").run(valley_medium, tracker=tracker)
        return tracker.work

    work = benchmark(run)
    table = run_experiment("E2", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("work/bound")) <= 3.0
    benchmark.extra_info["work"] = work
