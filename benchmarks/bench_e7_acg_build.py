"""E7 — Lemmas 3.3-3.5: ACG construction in O(m log^2 m)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.cg import ProfileIndex
from repro.hsr.sequential import SequentialHSR


@pytest.fixture(scope="module")
def horizon(valley_medium):
    return SequentialHSR().final_profile(valley_medium)


def test_e7_build_profile_index(benchmark, horizon):
    index = benchmark(lambda: ProfileIndex(horizon))
    benchmark.extra_info["m"] = horizon.size
    benchmark.extra_info["build_ops"] = index.build_ops
    table = run_experiment("E7", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("ops/bound")) <= 2.0
