"""E6 — Fig. 2 + Lemma 3.6: CG first-intersection queries in
O(log^2 m)."""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.geometry.segments import ImageSegment
from repro.hsr.cg import ProfileIndex
from repro.hsr.sequential import SequentialHSR


@pytest.fixture(scope="module")
def profile_index(valley_medium):
    env = SequentialHSR().final_profile(valley_medium)
    return env, ProfileIndex(env)


def test_e6_first_intersection(benchmark, profile_index):
    env, index = profile_index
    rng = random.Random(7)
    lo, hi = env.y_span()
    zs = [v.y for v in env.vertices()]
    z0, z1 = min(zs), max(zs)
    queries = []
    for _ in range(256):
        y1 = rng.uniform(lo, hi)
        y2 = rng.uniform(lo, hi)
        if abs(y1 - y2) < 1e-6:
            y2 = y1 + 1.0
        queries.append(
            ImageSegment.make(
                (min(y1, y2), rng.uniform(z0, z1)),
                (max(y1, y2), rng.uniform(z0, z1)),
            )
        )

    def run():
        total = 0
        for q in queries:
            _, probes = index.first_intersection(q)
            total += probes
        return total

    total_probes = benchmark(run)
    benchmark.extra_info["mean_probes"] = total_probes / len(queries)
    table = run_experiment("E6", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("probes/log2")) <= 3.0
