"""E10 — Lemma 3.2: all k_s intersections by middle-diagonal split."""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.envelope.chain import Envelope, Piece
from repro.geometry.segments import ImageSegment
from repro.hsr.cg import ProfileIndex
from repro.hsr.intersect import all_intersections_lemma32


@pytest.fixture(scope="module")
def sawtooth_index():
    pieces = []
    for i in range(256):
        y = float(2 * i)
        pieces.append(Piece(y, 0.0, y + 1, 2.0, i))
        pieces.append(Piece(y + 1, 2.0, y + 2, 0.0, i))
    env = Envelope(pieces)
    return env, ProfileIndex(env)


def test_e10_many_crossings(benchmark, sawtooth_index):
    env, index = sawtooth_index
    seg = ImageSegment(0.0, 1.0, 512.0, 1.0, 999)

    def run():
        hits, probes = all_intersections_lemma32(index, seg)
        return len(hits), probes

    ks, probes = benchmark(run)
    assert ks == 512
    benchmark.extra_info["k_s"] = ks
    benchmark.extra_info["probes"] = probes
    table = run_experiment("E10", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("probes/bound")) <= 4.0


def test_e10_few_crossings(benchmark, sawtooth_index):
    env, index = sawtooth_index
    seg = ImageSegment(0.0, 1.9, 512.0, 1.95, 999)  # grazes few teeth

    def run():
        hits, probes = all_intersections_lemma32(index, seg)
        return probes

    benchmark(run)
