"""E9 — Lemma 3.1: upper-envelope construction, O(log^2 m) depth."""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.envelope.build import build_envelope
from repro.geometry.segments import ImageSegment


@pytest.fixture(scope="module")
def segments():
    rng = random.Random(17)
    out = []
    for i in range(2048):
        y1 = rng.uniform(0, 1000)
        out.append(
            ImageSegment(
                y1,
                rng.uniform(0, 100),
                y1 + rng.uniform(1, 60),
                rng.uniform(0, 100),
                i,
            )
        )
    return out


def test_e9_build_envelope(benchmark, segments):
    from repro.envelope.engine import DEFAULT_ENGINE

    res = benchmark(lambda: build_envelope(segments))
    benchmark.extra_info["m"] = len(segments)
    benchmark.extra_info["envelope_size"] = res.envelope.size
    benchmark.extra_info["engine"] = DEFAULT_ENGINE
    table = run_experiment("E9", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("depth/log2")) <= 2.0
