"""E5 — Figs. 1 & 3: cross-layer profile sharing; persistence vs
copying memory."""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.bench.harness import run_experiment
from repro.hsr.parallel import ParallelHSR


def test_e5_persistent_phase2(benchmark, fractal_small):
    def run():
        # Backend-agnostic: phase 2 reports its own allocation delta
        # (treap nodes or rope chunk slots — same unit).
        res = ParallelHSR(mode="persistent").run(fractal_small)
        return res.stats.extra["nodes_allocated"]

    allocated = benchmark(run)
    benchmark.extra_info["nodes_allocated"] = allocated
    table = run_experiment("E5", quick=True)
    attach_table(benchmark, table)
    assert max(table.column("max_layer_shared_frac")) > 0.15
    assert table.column("saving")[-1] > 1.0


def test_e5_direct_phase2_copying(benchmark, fractal_small):
    res = benchmark(lambda: ParallelHSR(mode="direct").run(fractal_small))
    benchmark.extra_info["pieces_materialised"] = res.stats.extra[
        "pieces_materialised"
    ]
