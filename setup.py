"""Build hooks for the optional compiled fused-insert core.

The package is declaratively configured in ``pyproject.toml``; this
file exists only to attach the cffi extension
(``repro.envelope._repro_ccore``, built by
``src/repro/envelope/_ccore_build.py``) — and to make it *optional*:
a host with no C compiler must still ``pip install`` cleanly and run
on the pure-Python/numpy cascade, which is bit-exact by the parity
contract.  ``REPRO_CCORE_BUILD=0`` skips the extension outright
(the CI no-compiler leg uses it to pin the fallback path).
"""

import os

from setuptools import setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """``build_ext`` that tolerates a missing/broken C toolchain."""

    def run(self):
        for ext in self.extensions:
            # distutils' _filter_build_errors swallows compile/link
            # failures for optional extensions and prints a warning.
            ext.optional = True
        try:
            super().run()
        except Exception as exc:  # toolchain absent entirely
            print(f"warning: skipping optional C core ({exc})")


def _want_ccore() -> bool:
    if os.environ.get("REPRO_CCORE_BUILD", "1").strip().lower() in (
        "0",
        "false",
        "off",
        "no",
    ):
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return True


kwargs = {}
if _want_ccore():
    kwargs["cffi_modules"] = ["src/repro/envelope/_ccore_build.py:ffibuilder"]
    kwargs["cmdclass"] = {"build_ext": OptionalBuildExt}

setup(**kwargs)
