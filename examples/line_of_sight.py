#!/usr/bin/env python
"""Line-of-sight planning: point visibility and perspective views.

Plans a "transmission tower" placement: for each candidate site on a
fractal terrain, how high must a mast be before a distant observer
(at ``x = +inf``, or at a finite perspective viewpoint) can see its
top?  Exercises the unified query façade — the batched
:func:`repro.visible_many` point scan through a
:class:`repro.ViewshedSession`, the preprocessed
:class:`repro.VisibilityOracle` — and the perspective reduction, all
configured through one :class:`repro.HsrConfig`.

    python examples/line_of_sight.py [--size 17] [--candidates 6]
"""

from __future__ import annotations

import argparse

from repro import (
    HsrConfig,
    SequentialHSR,
    ViewshedSession,
    VisibilityOracle,
)
from repro.geometry.primitives import Point3
from repro.hsr.graph import graph_summary
from repro.terrain import Viewpoint, generate_terrain, perspective_transform


def mast_height(oracle: VisibilityOracle, base: Point3, limit=50.0) -> float:
    """Smallest mast height making the top visible (bisection)."""
    if oracle.visible(base):
        return 0.0
    lo, hi = 0.0, limit
    if not oracle.visible(Point3(base.x, base.y, base.z + hi)):
        return float("inf")
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if oracle.visible(Point3(base.x, base.y, base.z + mid)):
            hi = mid
        else:
            lo = mid
    return hi


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=17)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--candidates", type=int, default=6)
    args = parser.parse_args()

    config = HsrConfig()  # one front door: engine/eps/workers in one place
    terrain = generate_terrain("fractal", size=args.size, seed=args.seed)
    oracle = VisibilityOracle(terrain, config=config)
    print(f"terrain: {terrain}  (oracle: {oracle.n_checkpoints} checkpoints)")

    # Candidate sites: evenly spaced terrain vertices, answered in one
    # batched point scan through the session façade.
    step = max(1, terrain.n_vertices // args.candidates)
    sites = list(terrain.vertices[::step][: args.candidates])
    session = ViewshedSession(terrain, config=config)
    visible_flags = session.points_visible(sites)
    print(f"\n{'site (x, y, z)':>32} {'visible?':>9} {'mast needed':>12}")
    for v, vis in zip(sites, visible_flags):
        mast = mast_height(oracle, v)
        mast_str = "0 (visible)" if vis else f"{mast:.2f}"
        print(
            f"({v.x:8.2f}, {v.y:8.2f}, {v.z:6.2f}) {str(vis):>9}"
            f" {mast_str:>12}"
        )

    # The same scene through a finite camera.
    xmax = max(v.x for v in terrain.vertices)
    z_hi = terrain.height_range()[1]
    view = Viewpoint(xmax * 1.3 + 1.0, 0.0, z_hi * 2.0)
    scene = perspective_transform(terrain, view)
    res = SequentialHSR(config=config).run(scene)
    stats = graph_summary(res.visibility_map)
    print(
        f"\nperspective view from {tuple(round(c, 1) for c in view)}:"
        f" k={res.k}, image graph has {stats['nodes']:.0f} vertices,"
        f" {stats['edges']:.0f} edges, {stats['components']:.0f}"
        " connected components"
    )


if __name__ == "__main__":
    main()
