#!/usr/bin/env python
"""GIS horizon analysis from a DEM grid.

Builds a synthetic ESRI-ASCII digital elevation model (the common GIS
exchange format), imports it as a TIN, and computes:

* the visible surface from a given compass direction (which terrain
  edges a distant observer can see — the "viewshed-from-infinity"),
* the horizon profile (the scene's upper envelope),
* a comparison of the object-space result against an image-space
  z-buffer at several resolutions.

    python examples/gis_viewshed.py [--direction 90] [--rows 40]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.hsr import SequentialHSR, ZBufferHSR, ParallelHSR
from repro.render import render_envelope_svg, render_visibility_svg
from repro.terrain import dem_to_terrain, write_esri_ascii


def synthetic_dem(rows: int, cols: int, seed: int) -> np.ndarray:
    """A DEM with a river valley between two ranges (classic viewshed
    demo geometry)."""
    rng = np.random.default_rng(seed)
    r = np.linspace(-1, 1, rows)[:, None]
    c = np.linspace(-1, 1, cols)[None, :]
    ranges = 40 * np.exp(-((c - 0.45) ** 2) / 0.03) + 55 * np.exp(
        -((c + 0.5) ** 2) / 0.08
    )
    valley = 1.0 - 0.4 * np.exp(-(c**2) / 0.01)
    rolling = 6 * np.sin(3.1 * r) * np.cos(2.3 * c)
    return (ranges * valley + rolling + 3 * rng.random((rows, cols))).clip(0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=40)
    parser.add_argument("--cols", type=int, default=40)
    parser.add_argument(
        "--direction",
        type=float,
        default=90.0,
        help="compass direction the observer looks *from* (degrees)",
    )
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--outdir", default=".")
    args = parser.parse_args()

    heights = synthetic_dem(args.rows, args.cols, args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        dem_path = Path(tmp) / "demo.asc"
        write_esri_ascii(heights, dem_path, cellsize=30.0)
        terrain = dem_to_terrain(dem_path, z_exaggeration=1.0)
    print(f"DEM: {args.rows}x{args.cols} cells -> {terrain}")

    # Rotate so the requested compass direction becomes the canonical
    # +x viewing axis.
    scene = terrain.rotated(-args.direction)

    result = ParallelHSR(mode="persistent").run(scene)
    check = SequentialHSR().run(scene)
    assert result.visibility_map.approx_same(check.visibility_map)
    visible = len(result.visibility_map.visible_edges())
    print(
        f"viewshed from azimuth {args.direction:.0f}°:"
        f" {visible}/{scene.n_edges} edges visible, k={result.k}"
    )

    horizon = SequentialHSR().final_profile(scene)
    print(f"horizon profile: {horizon.size} pieces")

    outdir = Path(args.outdir)
    render_visibility_svg(
        result.visibility_map, outdir / "viewshed.svg", title="viewshed"
    )
    render_envelope_svg(horizon, outdir / "horizon.svg", title="horizon")
    print(f"wrote {outdir / 'viewshed.svg'} and {outdir / 'horizon.svg'}")

    print("\nobject-space vs z-buffer (visible arc length):")
    ref = result.visibility_map.total_visible_length()
    print(f"  object-space: {ref:10.1f}  (resolution independent)")
    for px in (64, 128, 256):
        zb = ZBufferHSR(width=px, height=px).run(scene)
        zl = zb.visibility_map.total_visible_length()
        print(
            f"  z-buffer {px:>3}x{px:<3}: {zl:10.1f}"
            f"  (ratio {zl / ref:.3f}, {px * px} pixels)"
        )


if __name__ == "__main__":
    main()
