#!/usr/bin/env python
"""GIS horizon analysis from a DEM grid.

Builds a synthetic ESRI-ASCII digital elevation model (the common GIS
exchange format), imports it as a TIN, and computes:

* the visible surface from a given compass direction (which terrain
  edges a distant observer can see — the "viewshed-from-infinity"),
* the horizon profile (the scene's upper envelope), served through a
  :class:`repro.ViewshedSession` (one coalesced batched query against
  the cached horizon instead of per-probe sweeps),
* a comparison of the object-space result against an image-space
  z-buffer at several resolutions.

Everything runs through the unified front door: one
:class:`repro.HsrConfig` threads engine / eps / worker choices to the
algorithms and the query service alike (``--workers 2`` builds the
horizon envelope across real cores).

    python examples/gis_viewshed.py [--direction 90] [--rows 40]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    HsrConfig,
    ParallelHSR,
    SequentialHSR,
    ViewshedSession,
)
from repro.hsr import ZBufferHSR
from repro.render import render_envelope_svg, render_visibility_svg
from repro.terrain import dem_to_terrain, write_esri_ascii


def synthetic_dem(rows: int, cols: int, seed: int) -> np.ndarray:
    """A DEM with a river valley between two ranges (classic viewshed
    demo geometry)."""
    rng = np.random.default_rng(seed)
    r = np.linspace(-1, 1, rows)[:, None]
    c = np.linspace(-1, 1, cols)[None, :]
    ranges = 40 * np.exp(-((c - 0.45) ** 2) / 0.03) + 55 * np.exp(
        -((c + 0.5) ** 2) / 0.08
    )
    valley = 1.0 - 0.4 * np.exp(-(c**2) / 0.01)
    rolling = 6 * np.sin(3.1 * r) * np.cos(2.3 * c)
    return (ranges * valley + rolling + 3 * rng.random((rows, cols))).clip(0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=40)
    parser.add_argument("--cols", type=int, default=40)
    parser.add_argument(
        "--direction",
        type=float,
        default=90.0,
        help="compass direction the observer looks *from* (degrees)",
    )
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--outdir", default=".")
    parser.add_argument(
        "--workers",
        default="1",
        help="envelope-build process count ('auto' = all cores)",
    )
    args = parser.parse_args()
    workers = args.workers if args.workers == "auto" else int(args.workers)
    config = HsrConfig(workers=workers)

    heights = synthetic_dem(args.rows, args.cols, args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        dem_path = Path(tmp) / "demo.asc"
        write_esri_ascii(heights, dem_path, cellsize=30.0)
        terrain = dem_to_terrain(dem_path, z_exaggeration=1.0)
    print(f"DEM: {args.rows}x{args.cols} cells -> {terrain}")

    # Rotate so the requested compass direction becomes the canonical
    # +x viewing axis.
    scene = terrain.rotated(-args.direction)

    result = ParallelHSR(mode="persistent", config=config).run(scene)
    check = SequentialHSR(config=config).run(scene)
    assert result.visibility_map.approx_same(check.visibility_map)
    visible = len(result.visibility_map.visible_edges())
    print(
        f"viewshed from azimuth {args.direction:.0f}°:"
        f" {visible}/{scene.n_edges} edges visible, k={result.k}"
    )

    horizon = SequentialHSR(config=config).final_profile(scene)
    print(f"horizon profile: {horizon.size} pieces")

    # The same horizon, through the query service: probe sight lines
    # at several altitudes in one coalesced batched kernel launch.
    session = ViewshedSession(scene, config=config)
    ys = sorted({v.y for v in scene.vertices})
    z_lo, z_hi = scene.height_range()
    probes = [
        (ys[0], z, ys[-1], z)
        for z in np.linspace(z_lo, z_hi * 1.1, 8)
    ]
    answers = session.query_batch(probes)
    span = ys[-1] - ys[0]
    clear = sum(
        1
        for a in answers
        if abs(sum(p.yb - p.ya for p in a.parts) - span) < 1e-9
    )
    print(
        f"sight-line probes: {len(probes)} queries in"
        f" {session.stats['batches']} batched launch,"
        f" {clear} altitudes clear the whole ridge line"
    )

    outdir = Path(args.outdir)
    render_visibility_svg(
        result.visibility_map, outdir / "viewshed.svg", title="viewshed"
    )
    render_envelope_svg(horizon, outdir / "horizon.svg", title="horizon")
    print(f"wrote {outdir / 'viewshed.svg'} and {outdir / 'horizon.svg'}")

    print("\nobject-space vs z-buffer (visible arc length):")
    ref = result.visibility_map.total_visible_length()
    print(f"  object-space: {ref:10.1f}  (resolution independent)")
    for px in (64, 128, 256):
        zb = ZBufferHSR(width=px, height=px).run(scene)
        zl = zb.visibility_map.total_visible_length()
        print(
            f"  z-buffer {px:>3}x{px:<3}: {zl:10.1f}"
            f"  (ratio {zl / ref:.3f}, {px * px} pixels)"
        )


if __name__ == "__main__":
    main()
