#!/usr/bin/env python
"""Quickstart: generate a terrain, remove hidden surfaces, render.

Runs the paper's parallel algorithm on a fractal terrain, checks it
against the sequential baseline, reports the PRAM cost together with
predicted speedups, and writes an SVG of the visible image.

    python examples/quickstart.py [--size 33] [--seed 7] [--out scene.svg]
"""

from __future__ import annotations

import argparse

from repro import (
    HsrConfig,
    ParallelHSR,
    PramTracker,
    SequentialHSR,
    generate_terrain,
)
from repro.pram import speedup_curve
from repro.render import ascii_visibility, render_visibility_svg


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=33, help="grid size (2**k+1)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="quickstart_scene.svg")
    args = parser.parse_args()

    terrain = generate_terrain("fractal", size=args.size, seed=args.seed)
    print(f"terrain: {terrain}")

    config = HsrConfig()  # one front door: engine / eps / workers
    tracker = PramTracker()
    result = ParallelHSR(mode="persistent", config=config).run(
        terrain, tracker=tracker
    )
    print(f"parallel HSR: {result.visibility_map.summary()}")
    print(
        f"PRAM cost: work={tracker.work:.0f} depth={tracker.depth:.0f}"
        f" (parallelism ~{tracker.parallelism:.0f})"
    )

    baseline = SequentialHSR(config=config).run(terrain)
    agree = result.visibility_map.approx_same(baseline.visibility_map)
    print(f"matches sequential baseline: {agree}")
    assert agree, "algorithms diverged — please report this as a bug"

    print("\npredicted time on p processors (Brent):")
    for p, tp, speedup in speedup_curve(
        tracker.work, tracker.depth, [1, 4, 16, 64]
    ):
        print(f"  p={p:>3}: time={tp:>12.0f}  speedup={speedup:.2f}")

    print("\nvisible image (ASCII preview):")
    print(ascii_visibility(result.visibility_map, width=72, height=16))

    render_visibility_svg(result.visibility_map, args.out)
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
