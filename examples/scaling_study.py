#!/usr/bin/env python
"""Scaling study: the paper's bounds measured on your machine.

Sweeps input size and occlusion, printing the quantities Theorem 3.1
bounds (work, depth), the sequential comparison (the paper's Remark),
and the Brent speedup prediction — a condensed, self-contained version
of experiments E1-E4/E8.

    python examples/scaling_study.py [--full]
"""

from __future__ import annotations

import argparse
import math

from repro.bench.workloads import occlusion_suite, scaling_suite
from repro.hsr import NaiveHSR, ParallelHSR, SequentialHSR
from repro.pram import PramTracker, brent_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    sizes = (9, 17, 33, 65) if args.full else (9, 17, 33)

    print("-- input-size scaling (fractal terrain) --")
    print(
        f"{'n':>6} {'k':>6} {'work':>10} {'depth':>8}"
        f" {'work/(n+k)log3':>15} {'depth/log4':>11} {'par/seq':>8}"
    )
    for _label, terrain in scaling_suite(sizes):
        tracker = PramTracker()
        res = ParallelHSR().run(terrain, tracker=tracker)
        seq = SequentialHSR().run(terrain)
        n, k = terrain.n_edges, res.k
        l = math.log2(n)
        print(
            f"{n:>6} {k:>6} {tracker.work:>10.0f} {tracker.depth:>8.0f}"
            f" {tracker.work / ((n + k) * l**3):>15.3f}"
            f" {tracker.depth / l**4:>11.3f}"
            f" {tracker.work / seq.stats.ops:>8.1f}"
        )

    print("\n-- output-size sensitivity (fixed n, swept occlusion) --")
    print(f"{'occlusion':>9} {'k':>6} {'par work':>10} {'naive ops':>10}")
    for q, terrain in occlusion_suite(rows=14, cols=14):
        tracker = PramTracker()
        res = ParallelHSR(mode="acg").run(terrain, tracker=tracker)
        naive = NaiveHSR().run(terrain)
        print(
            f"{q:>9.1f} {res.k:>6} {tracker.work:>10.0f}"
            f" {naive.stats.ops:>10}"
        )

    print("\n-- Brent speedup prediction for the largest run --")
    t1 = brent_time(tracker.work, tracker.depth, 1)
    for p in (1, 2, 4, 8, 16, 32):
        tp = brent_time(tracker.work, tracker.depth, p)
        print(f"  p={p:>2}: speedup {t1 / tp:6.2f}")


if __name__ == "__main__":
    main()
