#!/usr/bin/env python
"""Mountain flyover: visibility of one scene from many view directions.

Rotating the terrain (equivalently, orbiting the camera) re-runs
hidden-surface removal per frame; the output size ``k`` varies with
the view while the input size stays fixed — a direct illustration of
why *output-sensitive* algorithms matter for interactive graphics,
the motivation in the paper's introduction.

    python examples/mountain_flyover.py [--frames 8] [--size 33]
"""

from __future__ import annotations

import argparse
import time

from repro.hsr import ParallelHSR
from repro.render import render_visibility_svg
from repro.terrain import generate_terrain


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--size", type=int, default=33)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--svg-prefix",
        default=None,
        help="write per-frame SVGs as PREFIX_<deg>.svg",
    )
    args = parser.parse_args()

    base = generate_terrain("fractal", size=args.size, seed=args.seed)
    algo = ParallelHSR(mode="persistent")
    print(f"scene: {base}")
    print(f"{'azimuth':>8} {'k':>7} {'visible edges':>14} {'seconds':>8}")

    for frame in range(args.frames):
        azimuth = 360.0 * frame / args.frames
        terrain = base.rotated(azimuth)
        t0 = time.perf_counter()
        result = algo.run(terrain)
        dt = time.perf_counter() - t0
        print(
            f"{azimuth:8.1f} {result.k:7d}"
            f" {len(result.visibility_map.visible_edges()):14d}"
            f" {dt:8.3f}"
        )
        if args.svg_prefix:
            render_visibility_svg(
                result.visibility_map,
                f"{args.svg_prefix}_{int(azimuth):03d}.svg",
                title=f"azimuth {azimuth:.0f}",
            )

    print(
        "\nNote how k (and with it the output-sensitive running time)"
        " changes with the view direction while n stays fixed."
    )


if __name__ == "__main__":
    main()
